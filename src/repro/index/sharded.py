"""Sharded parallel open search over a loaded :class:`LibraryIndex`.

The index rows are partitioned into N contiguous shards; each query
batch is encoded once in the parent and fanned out to a
``multiprocessing`` pool where workers score their shard through the
existing :class:`~repro.oms.search.SimilarityBackend` protocol.  The
parent merges per-query shard winners with the exact tie-break the
single-process searcher applies (highest score, then lowest precursor
mass, then lowest library position), so results are **bit-identical** to
:class:`~repro.oms.search.HDOmsSearcher` for every mode, shard count,
and worker count.

Shard payloads stay bit-packed until they reach a worker (8x less data
to fork/pickle); workers unpack lazily and cache the prepared backend,
so the per-search cost after warm-up is just the query batch shipping
plus the score merge.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..ann import OUTCOMES, AnnStats, CandidatePrefilter, HammingLSHIndex
from ..hdc.noise import flip_bits
from ..hdc.packing import pack_bipolar, unpack_bipolar
from ..ms.preprocessing import PreprocessingConfig, preprocess
from ..ms.spectrum import Spectrum
from ..obs.trace import get_tracer
from ..oms.candidates import WindowConfig
from ..oms.psm import PSM, SearchResult
from ..oms.search import (
    DenseBackend,
    HDSearchConfig,
    PackedBackend,
    encode_queries,
)
from .library import LibraryIndex

#: Named backend factories usable across process boundaries.
BACKEND_FACTORIES: Dict[str, Callable] = {
    "dense": DenseBackend,
    "packed": PackedBackend,
}

#: Per-process worker state, populated by the pool initializer.
_WORKER_STATE: Dict[str, Dict] = {}


def _resolve_backend(backend: Union[str, Callable]) -> Callable:
    if callable(backend):
        return backend
    try:
        return BACKEND_FACTORIES[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{sorted(BACKEND_FACTORIES)} or a factory callable"
        ) from None


class _ShardScorer:
    """One shard's prepared backend plus its per-charge mass index."""

    def __init__(self, payload: Dict) -> None:
        dim = int(payload["dim"])
        packed = np.asarray(payload["packed"])
        self.backend = _resolve_backend(payload["backend"])()
        if hasattr(self.backend, "prepare_packed"):
            # The payload already uses pack_bipolar layout — skip the
            # unpack/re-pack round trip (8x transient memory otherwise).
            self.backend.prepare_packed(packed, dim)
        else:
            self.backend.prepare(unpack_bipolar(packed, dim))
        self.global_positions = np.asarray(payload["positions"])
        masses = np.asarray(payload["masses"], dtype=np.float64)
        charges = np.asarray(payload["charges"], dtype=np.int64)
        self.charge_aware = bool(payload["charge_aware"])
        # Mirrors CandidateIndex: stable mass sort per charge bucket, so
        # equal-mass ties stay ordered by (global) library position.
        self._buckets: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        if self.charge_aware:
            for charge in np.unique(charges):
                local = np.flatnonzero(charges == charge)
                order = np.argsort(masses[local], kind="stable")
                local = local[order]
                self._buckets[int(charge)] = (masses[local], local)
        else:
            order = np.argsort(masses, kind="stable")
            self._buckets[0] = (masses[order], np.arange(len(masses))[order])
        # Optional ANN prefilter: each shard hashes its *own* rows, so
        # the shortlist union across shards is at least as inclusive as
        # one global prefilter (every shard gets its full candidate
        # budget).
        self._local_masses = masses
        self.prefilter: Optional[CandidatePrefilter] = None
        ann = payload.get("ann")
        if ann is not None:
            lsh = HammingLSHIndex.build(packed, dim, ann)
            self.prefilter = CandidatePrefilter(
                lsh, masses, charges, charge_aware=self.charge_aware
            )

    def score_batch(
        self,
        query_hvs: np.ndarray,
        query_masses: np.ndarray,
        query_charges: np.ndarray,
        half_width: float,
    ) -> Tuple[np.ndarray, ...]:
        """Best candidate per query within this shard.

        Returns ``(counts, best_scores, best_masses, best_positions,
        ann_outcomes, ann_scored_rows)`` where empty windows yield
        ``(0, -inf, +inf, -1)`` so they lose every merge comparison.
        ``counts`` holds full precursor-window sizes (even under ANN) so
        ``min_candidates`` gating in the parent is unchanged;
        ``ann_outcomes`` is a length-3 count vector in
        :data:`repro.ann.OUTCOMES` order and ``ann_scored_rows`` the
        rows actually scored (both all-zero without a prefilter).
        """
        num_queries = len(query_masses)
        counts = np.zeros(num_queries, dtype=np.int64)
        best_scores = np.full(num_queries, -np.inf, dtype=np.float64)
        best_masses = np.full(num_queries, np.inf, dtype=np.float64)
        best_positions = np.full(num_queries, -1, dtype=np.int64)
        ann_outcomes = np.zeros(len(OUTCOMES), dtype=np.int64)
        ann_scored = np.zeros(1, dtype=np.int64)
        for row in range(num_queries):
            if self.prefilter is not None:
                selection = self.prefilter.select(
                    query_hvs[row],
                    float(query_masses[row]),
                    int(query_charges[row]),
                    half_width,
                )
                ann_outcomes[OUTCOMES.index(selection.outcome)] += 1
                ann_scored[0] += len(selection.positions)
                if selection.window_count == 0:
                    continue
                window = selection.positions
                scores = self.backend.scores(query_hvs[row], window)
                best = int(np.argmax(scores))
                counts[row] = selection.window_count
                best_scores[row] = float(scores[best])
                best_masses[row] = float(self._local_masses[window[best]])
                best_positions[row] = int(self.global_positions[window[best]])
                continue
            key = int(query_charges[row]) if self.charge_aware else 0
            bucket = self._buckets.get(key)
            if bucket is None:
                continue
            sorted_masses, local_positions = bucket
            low = np.searchsorted(
                sorted_masses, query_masses[row] - half_width, "left"
            )
            high = np.searchsorted(
                sorted_masses, query_masses[row] + half_width, "right"
            )
            if high <= low:
                continue
            window = local_positions[low:high]
            scores = self.backend.scores(query_hvs[row], window)
            best = int(np.argmax(scores))
            counts[row] = high - low
            best_scores[row] = float(scores[best])
            best_masses[row] = float(sorted_masses[low + best])
            best_positions[row] = int(self.global_positions[window[best]])
        return (
            counts,
            best_scores,
            best_masses,
            best_positions,
            ann_outcomes,
            ann_scored,
        )


def _init_worker(payloads: List[Dict]) -> None:
    """Pool initializer: stash shard payloads; scorers build lazily."""
    _WORKER_STATE["payloads"] = {p["shard_id"]: p for p in payloads}
    _WORKER_STATE["scorers"] = {}


def _score_shard_task(task) -> Tuple:
    """Score one (shard, query batch) pair inside a worker process.

    The second element of the returned tuple is the worker-side wall
    time of the scoring call, so the parent can merge per-shard spans
    into its trace without any tracer state crossing the pool boundary.
    """
    shard_id, query_hvs, query_masses, query_charges, half_width = task
    scorer = _WORKER_STATE["scorers"].get(shard_id)
    if scorer is None:
        scorer = _ShardScorer(_WORKER_STATE["payloads"][shard_id])
        _WORKER_STATE["scorers"][shard_id] = scorer
    started = time.perf_counter()
    scored = scorer.score_batch(
        query_hvs, query_masses, query_charges, half_width
    )
    return (shard_id, time.perf_counter() - started) + scored


class ShardedSearcher:
    """Fan open-modification search across index shards and processes.

    Parameters
    ----------
    index:
        A built or loaded :class:`LibraryIndex`.
    num_shards:
        Number of contiguous row partitions (each becomes one scoring
        task per query batch).
    num_workers:
        Process-pool size; ``None`` picks ``min(num_shards, cpu_count)``
        and ``0`` disables multiprocessing entirely (shards are scored
        serially in-process — handy for tests and tiny workloads).
    backend:
        ``"dense"``, ``"packed"``, or a picklable zero-argument factory
        returning a :class:`~repro.oms.search.SimilarityBackend`.
    encoder:
        Optional pre-built query encoder; validated against the index
        provenance.  By default the encoder is reconstructed from the
        index so a loaded file is fully self-contained.
    """

    def __init__(
        self,
        index: LibraryIndex,
        num_shards: int = 2,
        preprocessing: Optional[PreprocessingConfig] = None,
        windows: Optional[WindowConfig] = None,
        config: Optional[HDSearchConfig] = None,
        backend: Union[str, Callable] = "dense",
        num_workers: Optional[int] = None,
        encoder=None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if num_shards > index.num_references:
            raise ValueError(
                f"cannot split {index.num_references} references into "
                f"{num_shards} shards"
            )
        if encoder is not None:
            index.validate(encoder.space.config, encoder.binning)
        _resolve_backend(backend)  # fail fast on bad names
        self.index = index
        self.num_shards = num_shards
        self.encoder = encoder if encoder is not None else index.make_encoder()
        self.preprocessing = preprocessing or index.preprocessing
        self.windows = windows or WindowConfig()
        self.config = config or HDSearchConfig()
        self._backend = backend
        self._backend_label = backend if isinstance(backend, str) else getattr(
            backend, "__name__", "custom"
        )
        self._noise_rng = np.random.default_rng(self.config.noise_seed)
        if num_workers is None:
            num_workers = min(num_shards, os.cpu_count() or 1)
        self._num_workers = num_workers
        self._pool = None
        self._serial_scorers: Dict[int, _ShardScorer] = {}
        self.ann_stats = AnnStats() if self.config.ann is not None else None

        self.references = index.records()
        packed = np.asarray(index.packed)
        if self.config.reference_ber > 0:
            # Same RNG draw order as HDOmsSearcher: one flip pass over
            # the full matrix before any query is touched.
            noisy = flip_bits(
                index.hypervectors(), self.config.reference_ber, self._noise_rng
            )
            packed = pack_bipolar(noisy)
        self._payloads = self._make_payloads(packed)

    # ------------------------------------------------------------------
    # sharding / pool plumbing
    # ------------------------------------------------------------------

    def _make_payloads(self, packed: np.ndarray) -> List[Dict]:
        payloads = []
        for shard_id, positions in enumerate(
            np.array_split(np.arange(self.index.num_references), self.num_shards)
        ):
            payloads.append(
                {
                    "shard_id": shard_id,
                    "positions": positions,
                    "packed": np.ascontiguousarray(packed[positions]),
                    "dim": self.index.dim,
                    "masses": self.index.neutral_masses[positions],
                    "charges": self.index.charges[positions],
                    "backend": self._backend,
                    "charge_aware": self.windows.charge_aware,
                    "ann": self.config.ann,
                }
            )
        return payloads

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context()
            self._pool = context.Pool(
                processes=self._num_workers,
                initializer=_init_worker,
                initargs=(self._payloads,),
            )
        return self._pool

    def close(self, timeout: float = 10.0) -> None:
        """Shut the worker pool down gracefully (idempotent).

        The pool is ``close()``-d and ``join()``-ed so in-flight shard
        tasks finish instead of being killed mid-request (a long-lived
        service must not lose answers for queued queries on shutdown).
        If the join does not complete within ``timeout`` seconds — a
        wedged worker — the pool falls back to ``terminate()``.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        pool.close()
        waiter = threading.Thread(target=pool.join, daemon=True)
        waiter.start()
        waiter.join(timeout)
        if waiter.is_alive():
            pool.terminate()
            waiter.join()

    def __enter__(self) -> "ShardedSearcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    @property
    def num_references(self) -> int:
        """Total reference rows across all shards."""
        return len(self.references)

    @property
    def backend_name(self) -> str:
        """Human-readable engine label (feeds logs and search results)."""
        suffix = "+ann" if self.config.ann is not None else ""
        return f"sharded-{self._backend_label}x{self.num_shards}{suffix}"

    def _score_all_shards(
        self,
        query_hvs: np.ndarray,
        query_masses: np.ndarray,
        query_charges: np.ndarray,
        half_width: float,
    ) -> List[Tuple[np.ndarray, ...]]:
        tasks = [
            (
                payload["shard_id"],
                query_hvs,
                query_masses,
                query_charges,
                half_width,
            )
            for payload in self._payloads
        ]
        tracer = get_tracer()
        with tracer.span(
            "shard.fanout",
            shards=self.num_shards,
            workers=self._num_workers,
            queries=len(query_masses),
        ):
            if self._num_workers == 0:
                raw = [_score_serial(self._serial_scorers, self._payloads, task) for task in tasks]
            else:
                raw = self._ensure_pool().map(_score_shard_task, tasks)
            if tracer.enabled:
                # Workers time their own scoring (a bare float crosses
                # the pool boundary); merge those timings here as spans
                # on virtual per-shard lanes under the fanout span.
                for result in raw:
                    tracer.emit(
                        "shard.score",
                        duration=float(result[1]),
                        thread=f"shard-{result[0]}",
                        shard=int(result[0]),
                        queries=len(query_masses),
                    )
        by_shard = {result[0]: result[2:] for result in raw}
        return [by_shard[shard_id] for shard_id in range(self.num_shards)]

    def _run_pass(
        self,
        pairs: Sequence[Tuple[Spectrum, np.ndarray]],
        mode: str,
    ) -> List[Optional[PSM]]:
        """One windowed scoring pass over already-encoded queries."""
        query_hvs = np.stack([hv for _, hv in pairs])
        query_masses = np.array([q.neutral_mass for q, _ in pairs])
        query_charges = np.array(
            [q.precursor_charge for q, _ in pairs], dtype=np.int64
        )
        half_width = (
            self.windows.standard_tolerance_da
            if mode == "standard"
            else self.windows.open_window_da
        )
        per_shard = self._score_all_shards(
            query_hvs, query_masses, query_charges, half_width
        )
        if self.ann_stats is not None:
            # Shard workers pre-aggregate their outcome counts; one
            # merge per shard keeps stats cheap across the process
            # boundary.  Counts are per (query, shard) pair.
            for shard in per_shard:
                self.ann_stats.record_batch(
                    shard[4], int(shard[0].sum()), int(shard[5][0])
                )
        counts = np.stack([shard[0] for shard in per_shard])
        scores = np.stack([shard[1] for shard in per_shard])
        masses = np.stack([shard[2] for shard in per_shard])
        positions = np.stack([shard[3] for shard in per_shard])
        totals = counts.sum(axis=0)
        # Winner per query: max score, ties to lowest reference mass,
        # then lowest library position — exactly HDOmsSearcher's argmax
        # over its mass-sorted candidate window.
        winner = np.lexsort((positions, masses, -scores), axis=0)[0]

        results: List[Optional[PSM]] = []
        for column, (query, _hv) in enumerate(pairs):
            if totals[column] == 0 or totals[column] < self.config.min_candidates:
                results.append(None)
                continue
            shard = int(winner[column])
            reference = self.references[int(positions[shard, column])]
            results.append(
                PSM(
                    query_id=query.identifier,
                    reference_id=reference.identifier,
                    peptide_key=reference.peptide_key(),
                    score=float(scores[shard, column]),
                    is_decoy=reference.is_decoy,
                    precursor_mass_difference=query.neutral_mass
                    - reference.neutral_mass,
                    mode=mode,
                )
            )
        return results

    def search(self, queries: Sequence[Spectrum]) -> SearchResult:
        """Search all queries; PSM stream identical to HDOmsSearcher.

        The query batch is encoded in fused blocks before the shard
        fan-out (one vectorized ``encode_batch`` pass per block instead
        of a per-query Python loop); BER injection stays per query in
        arrival order, so the PSM stream is unchanged.
        """
        start = time.perf_counter()
        unmatched = 0
        survivors: List[Tuple[Spectrum, Spectrum]] = []
        for query in queries:
            processed = preprocess(query, self.preprocessing)
            if processed is None:
                unmatched += 1
                continue
            survivors.append((query, processed))
        encoded = encode_queries(
            self.encoder, [processed for _, processed in survivors]
        )
        pairs: List[Tuple[Spectrum, np.ndarray]] = []
        for (query, _processed), query_hv in zip(survivors, encoded):
            if self.config.query_ber > 0:
                query_hv = flip_bits(
                    query_hv, self.config.query_ber, self._noise_rng
                )
            pairs.append((query, query_hv))

        results: List[Optional[PSM]] = []
        if pairs:
            if self.config.mode == "cascade":
                results = self._run_pass(pairs, "standard")
                retry = [
                    column
                    for column, psm in enumerate(results)
                    if psm is None
                ]
                if retry:
                    reopened = self._run_pass(
                        [pairs[column] for column in retry], "open"
                    )
                    for column, psm in zip(retry, reopened):
                        results[column] = psm
            else:
                results = self._run_pass(pairs, self.config.mode)

        psms = [psm for psm in results if psm is not None]
        unmatched += sum(1 for psm in results if psm is None)
        return SearchResult(
            psms=psms,
            num_queries=len(queries),
            num_unmatched=unmatched,
            elapsed_seconds=time.perf_counter() - start,
            backend_name=self.backend_name,
        )


def _score_serial(
    scorers: Dict[int, _ShardScorer], payloads: List[Dict], task
) -> Tuple:
    """In-process fallback used when ``num_workers=0``.

    Matches :func:`_score_shard_task`'s return layout, wall time of the
    scoring call included, so the parent merges spans identically for
    both execution paths.
    """
    shard_id = task[0]
    scorer = scorers.get(shard_id)
    if scorer is None:
        scorer = _ShardScorer(payloads[shard_id])
        scorers[shard_id] = scorer
    started = time.perf_counter()
    scored = scorer.score_batch(*task[1:])
    return (shard_id, time.perf_counter() - started) + scored
