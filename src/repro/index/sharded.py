"""Sharded parallel open search over a loaded :class:`LibraryIndex`.

The index rows are partitioned into N contiguous shards; each query
micro-batch is encoded once in the parent and fanned out to an
executor from :mod:`repro.exec`, where workers score their shard
through the existing :class:`~repro.oms.search.SimilarityBackend`
protocol.  The parent merges per-query shard winners with the exact
tie-break the single-process searcher applies (highest score, then
lowest precursor mass, then lowest library position), so results are
**bit-identical** to :class:`~repro.oms.search.HDOmsSearcher` for every
mode, shard count, worker count, and executor.

Parallelism is zero-copy: the packed rows, precursor metadata, and any
per-shard ANN tables live in one
:class:`~repro.exec.arena.SharedShardArena` segment created at
construction.  ``executor="process"`` workers reattach it by name (only
query batches and winners cross the pipe); ``executor="thread"``
scores shards concurrently over the parent's own views, relying on the
GIL-releasing NumPy kernels.  Multi-micro-batch searches additionally
overlap stages — batch ``k+1`` encodes while batch ``k`` scores — via
:func:`~repro.exec.pipeline.pipeline_map`.
"""

from __future__ import annotations

import dataclasses
import os
import time
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..ann import AnnStats, HammingLSHIndex
# EXECUTOR_KINDS moved to repro.engine; re-exported for compatibility.
from ..engine import EXECUTOR_KINDS as EXECUTOR_KINDS
from ..engine import EngineConfig
from ..exec.arena import SharedShardArena
from ..exec.pool import ProcessShardExecutor, ThreadShardExecutor
from ..exec.scorer import ShardScorer, resolve_backend, shard_payload
from ..hdc.noise import flip_bits
from ..hdc.packing import pack_bipolar
from ..ms.preprocessing import PreprocessingConfig
from ..ms.spectrum import Spectrum
from ..obs.trace import get_tracer
from ..oms.candidates import WindowConfig
from ..oms.loop import MicroBatchSearchMixin
from ..oms.psm import PSM
from ..oms.search import ENCODE_BLOCK_SIZE, HDSearchConfig
from .library import LibraryIndex

#: Sentinel distinguishing "kwarg not passed" from an explicit value,
#: so only *explicit* legacy engine kwargs trigger the deprecation shim.
_UNSET = object()


def _resolve_engine(
    engine: Optional[EngineConfig],
    legacy: Dict[str, object],
    config: Optional[HDSearchConfig],
    owner: str,
    kinds: Tuple[str, ...],
    legacy_defaults: Dict[str, object],
) -> EngineConfig:
    """Shared legacy-kwargs → :class:`EngineConfig` shim.

    Explicitly passed legacy kwargs emit a :class:`DeprecationWarning`
    (and conflict with ``engine=``); a bare call silently keeps the
    owner's historical defaults.
    """
    if engine is not None and legacy:
        raise ValueError(
            f"{owner}: pass engine knobs via engine=EngineConfig(...) or "
            f"the legacy kwargs, not both: {sorted(legacy)}"
        )
    if legacy:
        warnings.warn(
            f"{owner} engine kwargs ({', '.join(sorted(legacy_defaults))}) "
            "are deprecated; pass engine=repro.engine.EngineConfig(...) "
            "instead",
            DeprecationWarning,
            stacklevel=3,
        )
    if engine is None:
        resolved = dict(legacy_defaults)
        resolved.update(legacy)
        engine = EngineConfig(
            kind=kinds[-1],
            ann=config.ann if config is not None else None,
            **resolved,
        )
    elif engine.kind not in ("auto",) + kinds:
        raise ValueError(
            f"{owner} cannot host engine kind {engine.kind!r}"
        )
    return engine


def _fold_engine_ann(
    engine: EngineConfig, config: Optional[HDSearchConfig]
) -> HDSearchConfig:
    """Merge ``engine.ann`` into the search config (conflicts rejected)."""
    config = config or HDSearchConfig()
    if engine.ann is None or engine.ann == config.ann:
        return config
    if config.ann is not None:
        raise ValueError(
            "conflicting ANN configs: engine.ann disagrees with config.ann"
        )
    return dataclasses.replace(config, ann=engine.ann)


class ShardedSearcher(MicroBatchSearchMixin):
    """Fan open-modification search across index shards and workers.

    Parameters
    ----------
    index:
        A built or loaded :class:`LibraryIndex`.
    engine:
        An :class:`~repro.engine.EngineConfig` naming the execution
        knobs (shards, workers, executor, backend, tiling, pipeline
        batch, ANN).  This is the preferred construction surface; the
        individual keyword arguments below remain as deprecated shims.
    num_shards:
        *Deprecated — use* ``engine``.  Number of contiguous row
        partitions (each becomes one scoring task per query batch);
        historically defaulted to 2.
    num_workers:
        *Deprecated — use* ``engine``.  Worker count; ``None`` picks
        ``min(num_shards, cpu_count)`` and ``0`` disables parallelism
        entirely (shards are scored serially in-process — handy for
        tests and tiny workloads).
    backend:
        *Deprecated — use* ``engine``.  ``"dense"``, ``"packed"``, or a
        picklable zero-argument factory returning a
        :class:`~repro.oms.search.SimilarityBackend`.
    executor:
        *Deprecated — use* ``engine``.  ``"process"`` (default; a
        multiprocessing pool reattaching the shared arena by name) or
        ``"thread"`` (an in-process thread pool over the same arena —
        zero IPC, concurrency from GIL-releasing kernels).  Ignored
        when ``num_workers == 0``.
    score_block_rows:
        *Deprecated — use* ``engine``.  Rows per scoring block handed
        to backends that support tiling (``None`` = backend auto-sizes
        to its cache budget, ``0`` = untiled).  Never changes results.
    pipeline_batch:
        *Deprecated — use* ``engine``.  Queries per encode micro-batch
        in :meth:`search`; defaults to
        :data:`~repro.oms.search.ENCODE_BLOCK_SIZE`.  Batches beyond the
        first are encoded one stage ahead of scoring.
    encoder:
        Optional pre-built query encoder; validated against the index
        provenance.  By default the encoder is reconstructed from the
        index so a loaded file is fully self-contained.
    """

    #: Historical constructor defaults the legacy-kwarg shim preserves.
    _LEGACY_DEFAULTS = {
        "num_shards": 2,
        "backend": "dense",
        "num_workers": None,
        "executor": "process",
        "score_block_rows": None,
        "pipeline_batch": None,
    }

    def __init__(
        self,
        index: LibraryIndex,
        num_shards: int = _UNSET,
        preprocessing: Optional[PreprocessingConfig] = None,
        windows: Optional[WindowConfig] = None,
        config: Optional[HDSearchConfig] = None,
        backend: Union[str, Callable] = _UNSET,
        num_workers: Optional[int] = _UNSET,
        encoder=None,
        executor: str = _UNSET,
        score_block_rows: Optional[int] = _UNSET,
        pipeline_batch: Optional[int] = _UNSET,
        engine: Optional[EngineConfig] = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("num_shards", num_shards),
                ("backend", backend),
                ("num_workers", num_workers),
                ("executor", executor),
                ("score_block_rows", score_block_rows),
                ("pipeline_batch", pipeline_batch),
            )
            if value is not _UNSET
        }
        engine = _resolve_engine(
            engine, legacy, config, "ShardedSearcher", ("sharded",),
            self._LEGACY_DEFAULTS,
        )
        config = _fold_engine_ann(engine, config)
        if engine.num_shards > index.num_references:
            raise ValueError(
                f"cannot split {index.num_references} references into "
                f"{engine.num_shards} shards"
            )
        if encoder is not None:
            index.validate(encoder.space.config, encoder.binning)
        resolve_backend(engine.backend)  # fail fast on bad factories
        self.index = index
        self.engine = engine
        self.num_shards = engine.num_shards
        self.encoder = encoder if encoder is not None else index.make_encoder()
        self.preprocessing = preprocessing or index.preprocessing
        self.windows = windows or WindowConfig()
        self.config = config
        self._backend = engine.backend
        self._backend_label = engine.backend_label
        self._noise_rng = np.random.default_rng(self.config.noise_seed)
        num_workers = engine.num_workers
        if num_workers is None:
            num_workers = min(engine.num_shards, os.cpu_count() or 1)
        self._num_workers = num_workers
        self._executor_name = engine.executor
        self._score_block_rows = engine.score_block_rows
        self._pipeline_batch = engine.pipeline_batch or ENCODE_BLOCK_SIZE
        self._serial_scorers: Dict[int, ShardScorer] = {}
        self.ann_stats = AnnStats() if self.config.ann is not None else None

        self.references = index.records()
        self._bounds = index.shard_bounds(engine.num_shards)
        packed = np.asarray(index.packed)
        if self.config.reference_ber > 0:
            # Same RNG draw order as HDOmsSearcher: one flip pass over
            # the full matrix before any query is touched.
            noisy = flip_bits(
                index.hypervectors(), self.config.reference_ber, self._noise_rng
            )
            packed = pack_bipolar(noisy)
        # Kept so a closed searcher can lazily rebuild its arena on the
        # next search (a view of ``index.packed`` unless BER flipped).
        self._packed_source = packed
        self._arena: Optional[SharedShardArena] = None
        self._executor = None
        self._payloads: List[Dict] = []
        if num_workers == 0:
            # Serial in-process mode needs no shared segment: payloads
            # are zero-copy row-range views of the packed matrix.
            self._payloads = [
                shard_payload(
                    shard_id,
                    bounds,
                    packed,
                    self.index.neutral_masses,
                    self.index.charges,
                    dim=self.index.dim,
                    backend=self._backend,
                    charge_aware=self.windows.charge_aware,
                    ann=self.config.ann,
                    score_block_rows=engine.score_block_rows,
                )
                for shard_id, bounds in enumerate(self._bounds)
            ]
        else:
            self._ensure_executor()

    # ------------------------------------------------------------------
    # arena / executor plumbing
    # ------------------------------------------------------------------

    def _ensure_executor(self):
        """Build (or rebuild, after :meth:`close`) the arena + executor."""
        if self._executor is None and self._num_workers != 0:
            self._arena, setup = self._build_arena(self._packed_source)
            if self._executor_name == "thread":
                self._executor = ThreadShardExecutor(
                    self._arena, setup, self._num_workers
                )
            else:
                self._executor = ProcessShardExecutor(setup, self._num_workers)
        return self._executor

    def _build_arena(
        self, packed: np.ndarray
    ) -> Tuple[SharedShardArena, Dict]:
        """Copy the scoring inputs into shared memory, once.

        Per-shard ANN tables (when configured) are built here in the
        parent — from exactly the rows and config a worker would use,
        so the tables are identical — and shipped through the arena
        instead of being rebuilt N_workers times.
        """
        arrays: Dict[str, np.ndarray] = {
            "packed": packed,
            "masses": np.asarray(self.index.neutral_masses, dtype=np.float64),
            "charges": np.asarray(self.index.charges, dtype=np.int64),
        }
        ann_provenance = None
        if self.config.ann is not None:
            provenance = []
            for shard_id, (start, stop) in enumerate(self._bounds):
                lsh = HammingLSHIndex.build(
                    packed[start:stop], self.index.dim, self.config.ann
                )
                provenance.append(lsh.provenance())
                for key, value in lsh.to_arrays().items():
                    arrays[f"shard{shard_id}.{key}"] = value
            ann_provenance = tuple(provenance)
        arena = SharedShardArena.create(arrays)
        setup = {
            "spec": arena.spec(),
            "dim": self.index.dim,
            "backend": self._backend,
            "charge_aware": self.windows.charge_aware,
            "bounds": tuple(self._bounds),
            "ann": self.config.ann,
            "ann_provenance": ann_provenance,
            "score_block_rows": self._score_block_rows,
        }
        return arena, setup

    def close(self, timeout: float = 10.0) -> None:
        """Shut the executor down and unlink the arena (idempotent).

        In-flight shard tasks get ``timeout`` seconds to finish before
        the executor falls back to termination — and the shared-memory
        segment is unlinked **unconditionally** afterwards, including on
        the terminate-fallback path and when the pool initializer never
        came up, so no segment can outlive the searcher.
        """
        executor, self._executor = self._executor, None
        arena, self._arena = self._arena, None
        try:
            if executor is not None:
                executor.close(timeout)
        finally:
            if arena is not None:
                arena.close()

    def __enter__(self) -> "ShardedSearcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    @property
    def num_references(self) -> int:
        """Total reference rows across all shards."""
        return len(self.references)

    @property
    def backend_name(self) -> str:
        """Human-readable engine label (feeds logs and search results)."""
        suffix = "+ann" if self.config.ann is not None else ""
        return f"sharded-{self._backend_label}x{self.num_shards}{suffix}"

    @property
    def executor_kind(self) -> str:
        """The active execution mode: ``process``, ``thread``, ``serial``."""
        return "serial" if self._num_workers == 0 else self._executor_name

    @property
    def arena_nbytes(self) -> int:
        """Shared-memory bytes backing the shards (0 in serial mode)."""
        return self._arena.nbytes if self._arena is not None else 0

    def _score_all_shards(
        self,
        query_hvs: np.ndarray,
        query_masses: np.ndarray,
        query_charges: np.ndarray,
        half_width: float,
    ) -> List[Tuple[np.ndarray, ...]]:
        tasks = [
            (shard_id, query_hvs, query_masses, query_charges, half_width)
            for shard_id in range(self.num_shards)
        ]
        tracer = get_tracer()
        with tracer.span(
            "shard.fanout",
            shards=self.num_shards,
            workers=self._num_workers,
            executor=self.executor_kind,
            queries=len(query_masses),
        ):
            executor = self._ensure_executor()
            if executor is None:
                raw = [_score_serial(self, task) for task in tasks]
            else:
                raw = executor.run(tasks)
            if tracer.enabled:
                # Workers time their own scoring (a bare float crosses
                # the pool boundary); merge those timings here as spans
                # on virtual per-shard lanes under the fanout span.
                for result in raw:
                    tracer.emit(
                        "shard.score",
                        duration=float(result[1]),
                        thread=f"shard-{result[0]}",
                        shard=int(result[0]),
                        queries=len(query_masses),
                    )
        by_shard = {result[0]: result[2:] for result in raw}
        return [by_shard[shard_id] for shard_id in range(self.num_shards)]

    def _run_pass(
        self,
        pairs: Sequence[Tuple[Spectrum, np.ndarray]],
        mode: str,
    ) -> List[Optional[PSM]]:
        """One windowed scoring pass over already-encoded queries."""
        query_hvs = np.stack([hv for _, hv in pairs])
        query_masses = np.array([q.neutral_mass for q, _ in pairs])
        query_charges = np.array(
            [q.precursor_charge for q, _ in pairs], dtype=np.int64
        )
        half_width = (
            self.windows.standard_tolerance_da
            if mode == "standard"
            else self.windows.open_window_da
        )
        per_shard = self._score_all_shards(
            query_hvs, query_masses, query_charges, half_width
        )
        if self.ann_stats is not None:
            # Shard workers pre-aggregate their outcome counts; one
            # merge per shard keeps stats cheap across the process
            # boundary.  Counts are per (query, shard) pair.
            for shard in per_shard:
                self.ann_stats.record_batch(
                    shard[4], int(shard[0].sum()), int(shard[5][0])
                )
        counts = np.stack([shard[0] for shard in per_shard])
        scores = np.stack([shard[1] for shard in per_shard])
        masses = np.stack([shard[2] for shard in per_shard])
        positions = np.stack([shard[3] for shard in per_shard])
        totals = counts.sum(axis=0)
        # Winner per query: max score, ties to lowest reference mass,
        # then lowest library position — exactly HDOmsSearcher's argmax
        # over its mass-sorted candidate window.
        winner = np.lexsort((positions, masses, -scores), axis=0)[0]

        results: List[Optional[PSM]] = []
        for column, (query, _hv) in enumerate(pairs):
            if totals[column] == 0 or totals[column] < self.config.min_candidates:
                results.append(None)
                continue
            shard = int(winner[column])
            reference = self.references[int(positions[shard, column])]
            results.append(
                PSM(
                    query_id=query.identifier,
                    reference_id=reference.identifier,
                    peptide_key=reference.peptide_key(),
                    score=float(scores[shard, column]),
                    is_decoy=reference.is_decoy,
                    precursor_mass_difference=query.neutral_mass
                    - reference.neutral_mass,
                    mode=mode,
                    reference_mass=float(reference.neutral_mass),
                    library_position=int(positions[shard, column]),
                )
            )
        return results


def _score_serial(searcher: ShardedSearcher, task: Tuple) -> Tuple:
    """In-process fallback used when ``num_workers=0``.

    Matches the executors' result layout, wall time of the scoring call
    included, so the parent merges spans identically for every
    execution path.
    """
    shard_id = task[0]
    scorer = searcher._serial_scorers.get(shard_id)
    if scorer is None:
        scorer = ShardScorer(searcher._payloads[shard_id])
        searcher._serial_scorers[shard_id] = scorer
    started = time.perf_counter()
    scored = scorer.score_batch(*task[1:])
    return (shard_id, time.perf_counter() - started) + scored
