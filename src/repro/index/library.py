"""Build, persist, and reload an encoded spectral-library index.

A :class:`LibraryIndex` is the on-disk unit of the build-once /
search-many workflow:

* hypervectors are encoded in chunks, one precursor-charge bucket at a
  time (mirroring how the batched searcher and the accelerator schedule
  the library), then *bit-packed* with the same
  :func:`~repro.hdc.packing.pack_bipolar` layout the digital search path
  uses — 8x smaller on disk than the int8 bipolar matrix;
* per-reference metadata (identifier, canonical peptide key, decoy
  flag, neutral mass, charge) rides along so a searcher reconstructed
  from the index produces byte-identical PSMs without the original
  :class:`~repro.ms.spectrum.Spectrum` objects;
* the exact :class:`~repro.hdc.spaces.HDSpaceConfig`,
  :class:`~repro.ms.vectorize.BinningConfig` and
  :class:`~repro.ms.preprocessing.PreprocessingConfig` are serialised as
  provenance and re-validated on load, so an index can never be silently
  searched with an incompatible encoder.

The file format is a plain uncompressed ``.npz``; :meth:`LibraryIndex.load`
memory-maps the packed bit matrix straight out of the archive (falling
back to a normal read if the member layout does not allow it), so a
multi-gigabyte library costs near-zero load time and the OS page cache
is shared between worker processes.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import struct
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..ann import AnnConfig, HammingLSHIndex
from ..hdc.encoder import SpectrumEncoder
from ..hdc.packing import pack_bipolar, unpack_bipolar
from ..hdc.spaces import HDSpace, HDSpaceConfig
from ..ms.preprocessing import PreprocessingConfig, preprocess
from ..ms.spectrum import Spectrum
from ..ms.vectorize import BinningConfig

logger = logging.getLogger(__name__)

#: Bump when the on-disk layout changes incompatibly.
INDEX_FORMAT_VERSION = 1

#: Default number of spectra encoded per ``encode_batch`` call.
DEFAULT_CHUNK_SIZE = 512


class IndexCompatibilityError(ValueError):
    """A persisted index does not match the requested configuration."""


@dataclass(frozen=True)
class ReferenceRecord:
    """Searchable metadata of one indexed reference spectrum.

    Quacks like :class:`~repro.ms.spectrum.Spectrum` for everything the
    search path touches (``identifier``, ``peptide_key()``, ``is_decoy``,
    ``neutral_mass``, ``precursor_charge``) without carrying peak arrays.
    """

    identifier: str
    peptide: Optional[str]
    is_decoy: bool
    neutral_mass: float
    precursor_charge: int

    def peptide_key(self) -> Optional[str]:
        """Canonical peptide string (already includes the charge)."""
        return self.peptide


def _config_to_dict(config) -> dict:
    return dataclasses.asdict(config)


def _mmap_npz_array(path: Path, member: str) -> Optional[np.ndarray]:
    """Memory-map one array member of an uncompressed ``.npz`` archive.

    ``np.load(..., mmap_mode=...)`` silently ignores the mmap request
    for zipped archives, so we locate the stored member ourselves: find
    its local file header, skip it, parse the ``.npy`` header, and map
    the raw data region.  Returns None when mapping is not possible
    (compressed member, Fortran order, unexpected format version) so the
    caller can fall back to a regular read.
    """
    try:
        with zipfile.ZipFile(path) as archive:
            info = archive.getinfo(member)
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            header_offset = info.header_offset
        with open(path, "rb") as handle:
            handle.seek(header_offset)
            local_header = handle.read(30)
            if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
                return None
            name_length, extra_length = struct.unpack(
                "<HH", local_header[26:30]
            )
            handle.seek(header_offset + 30 + name_length + extra_length)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                    handle
                )
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(
                    handle
                )
            else:
                return None
            if fortran or dtype.hasobject:
                return None
            data_offset = handle.tell()
        return np.memmap(
            path, dtype=dtype, mode="r", offset=data_offset, shape=shape
        )
    except (OSError, KeyError, ValueError):
        return None


class LibraryIndex:
    """A persisted encoded reference library plus its provenance.

    Construct via :meth:`build` (from spectra) or :meth:`load` (from
    disk); instances are immutable in spirit — searchers only read.
    """

    def __init__(
        self,
        packed: np.ndarray,
        dim: int,
        identifiers: Sequence[str],
        peptide_keys: Sequence[Optional[str]],
        is_decoy: np.ndarray,
        neutral_masses: np.ndarray,
        charges: np.ndarray,
        space_config: HDSpaceConfig,
        binning: BinningConfig,
        preprocessing: PreprocessingConfig,
        source: str = "",
        ann: Optional[HammingLSHIndex] = None,
    ) -> None:
        """Adopt ready-made arrays; prefer :meth:`build` / :meth:`load`.

        Args:
            packed: ``(n, ceil(dim / 8))`` uint8 bit-packed hypervectors.
            dim: Unpacked hypervector dimensionality.
            identifiers: Per-row spectrum identifiers.
            peptide_keys: Per-row canonical peptide keys (None allowed).
            is_decoy: Per-row decoy flags.
            neutral_masses: Per-row neutral masses in Da.
            charges: Per-row precursor charges.
            space_config: HD space the rows were encoded in.
            binning: Peak binning the rows were encoded with.
            preprocessing: Preprocessing the rows went through.
            source: Free-form origin string (provenance only).
            ann: Optional pre-built Hamming-LSH tables over the same rows.

        Raises:
            ValueError: If array lengths or the packed width disagree.
            IndexCompatibilityError: If ``ann`` covers different rows or
                a different dimensionality than ``packed``.
        """
        self.packed = packed
        self.dim = int(dim)
        self.identifiers = list(identifiers)
        self.peptide_keys = list(peptide_keys)
        self.is_decoy = np.asarray(is_decoy, dtype=bool)
        self.neutral_masses = np.asarray(neutral_masses, dtype=np.float64)
        self.charges = np.asarray(charges, dtype=np.int64)
        self.space_config = space_config
        self.binning = binning
        self.preprocessing = preprocessing
        self.source = source
        n = len(self.identifiers)
        if not (
            packed.shape[0]
            == len(self.peptide_keys)
            == len(self.is_decoy)
            == len(self.neutral_masses)
            == len(self.charges)
            == n
        ):
            raise ValueError("index arrays disagree on reference count")
        expected_words = -(-self.dim // 8)
        if packed.ndim != 2 or packed.shape[1] != expected_words:
            raise ValueError(
                f"packed matrix has {packed.shape[1] if packed.ndim == 2 else '?'} "
                f"words per row, expected {expected_words} for dim {self.dim}"
            )
        if ann is not None and (ann.num_rows != n or ann.dim != self.dim):
            raise IndexCompatibilityError(
                f"ANN tables cover {ann.num_rows} rows at dim {ann.dim}, "
                f"index holds {n} rows at dim {self.dim}"
            )
        self.ann = ann

    def shard_bounds(self, num_shards: int) -> List[Tuple[int, int]]:
        """Contiguous ``[start, stop)`` row ranges splitting the library.

        Matches ``np.array_split`` semantics (the first ``n % k`` shards
        get one extra row), so shard payloads can be zero-copy row-range
        views of the packed matrix — contiguity is what lets the exec
        layer share slabs instead of gather copies.

        Raises:
            ValueError: If ``num_shards`` is outside ``[1, num_rows]``.
        """
        total = self.num_references
        if not 1 <= num_shards <= total:
            raise ValueError(
                f"cannot split {total} references into {num_shards} shards"
            )
        base, extra = divmod(total, num_shards)
        bounds: List[Tuple[int, int]] = []
        start = 0
        for shard in range(num_shards):
            stop = start + base + (1 if shard < extra else 0)
            bounds.append((start, stop))
            start = stop
        return bounds

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        references: Sequence[Spectrum],
        encoder: Optional[SpectrumEncoder] = None,
        space_config: Optional[HDSpaceConfig] = None,
        binning: Optional[BinningConfig] = None,
        preprocessing: Optional[PreprocessingConfig] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        source: str = "",
        ann: Optional[AnnConfig] = None,
    ) -> "LibraryIndex":
        """Encode *references* once into a reusable index.

        Either pass a ready ``encoder`` or the ``space_config`` /
        ``binning`` pair to build one.  Encoding walks the library one
        precursor-charge bucket at a time in chunks of ``chunk_size``
        spectra, so peak memory stays bounded and the access pattern
        matches the charge-bucketed layout every searcher uses; rows are
        scattered back into library order so downstream results are
        bit-identical to encoding in place.

        Args:
            references: Library spectra (targets and decoys).
            encoder: Ready spectrum encoder; built from ``space_config``
                / ``binning`` when omitted.
            space_config: HD space to encode in (ignored with ``encoder``).
            binning: Peak binning config.
            preprocessing: Spectrum preprocessing config.
            chunk_size: Spectra encoded per fused batch call.
            source: Free-form origin string stored in the provenance.
            ann: When given, Hamming-LSH hash tables are built with this
                configuration and persisted alongside the vectors by
                :meth:`save`.

        Returns:
            The fully encoded, searchable index.

        Raises:
            ValueError: On bad ``chunk_size`` or when no reference
                survives preprocessing.
            IndexCompatibilityError: When ``encoder`` and ``binning``
                disagree.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        binning = binning or (encoder.binning if encoder else BinningConfig())
        if encoder is None:
            space_config = space_config or HDSpaceConfig()
            space_config = dataclasses.replace(
                space_config, num_bins=binning.num_bins
            )
            encoder = SpectrumEncoder(HDSpace(space_config), binning)
        else:
            space_config = encoder.space.config
            if encoder.binning != binning:
                raise IndexCompatibilityError(
                    "encoder binning disagrees with the binning argument"
                )
        preprocessing = preprocessing or PreprocessingConfig()

        kept_originals: List[Spectrum] = []
        kept_processed: List[Spectrum] = []
        for reference in references:
            processed = preprocess(reference, preprocessing)
            if processed is not None:
                kept_originals.append(reference)
                kept_processed.append(processed)
        if not kept_originals:
            raise ValueError("no reference spectrum survived preprocessing")

        num_kept = len(kept_originals)
        encode_started = time.perf_counter()
        logger.info(
            "building index: %d/%d references survived preprocessing "
            "(dim=%d, chunk_size=%d)",
            num_kept,
            len(references),
            encoder.space.dim,
            chunk_size,
        )
        charges = np.array(
            [ref.precursor_charge for ref in kept_originals], dtype=np.int64
        )
        # Materialise the contiguous ID bank up front: every chunk below
        # goes through the fused encode_batch pipeline, which gathers ID
        # rows from the bank, and building it once here keeps the first
        # chunk from absorbing the codebook construction.
        bank_builder = getattr(encoder.space, "id_bank", None)
        if bank_builder is not None:
            bank_builder()
        hypervectors = np.empty((num_kept, encoder.space.dim), dtype=np.int8)
        for charge in np.unique(charges):
            positions = np.flatnonzero(charges == charge)
            for start in range(0, len(positions), chunk_size):
                chunk = positions[start : start + chunk_size]
                hypervectors[chunk] = encoder.encode_batch(
                    [kept_processed[int(pos)] for pos in chunk]
                )

        index = cls(
            packed=pack_bipolar(hypervectors),
            dim=encoder.space.dim,
            identifiers=[ref.identifier for ref in kept_originals],
            peptide_keys=[ref.peptide_key() for ref in kept_originals],
            is_decoy=np.array(
                [ref.is_decoy for ref in kept_originals], dtype=bool
            ),
            neutral_masses=np.array(
                [ref.neutral_mass for ref in kept_originals], dtype=np.float64
            ),
            charges=charges,
            space_config=space_config,
            binning=binning,
            preprocessing=preprocessing,
            source=source,
        )
        logger.info(
            "encoded %d references in %.2f s",
            num_kept,
            time.perf_counter() - encode_started,
        )
        if ann is not None:
            index.attach_ann(ann)
        return index

    def attach_ann(self, config: Optional[AnnConfig] = None) -> HammingLSHIndex:
        """Build Hamming-LSH tables over this index's rows in place.

        Args:
            config: ANN knobs; defaults to :class:`~repro.ann.AnnConfig`.

        Returns:
            The freshly built tables (also stored as ``self.ann`` and
            persisted by subsequent :meth:`save` calls).
        """
        self.ann = HammingLSHIndex.build(
            np.asarray(self.packed), self.dim, config or AnnConfig()
        )
        return self.ann

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def provenance(self) -> dict:
        """The configuration provenance persisted alongside the vectors."""
        return {
            "format_version": INDEX_FORMAT_VERSION,
            "space": _config_to_dict(self.space_config),
            "binning": _config_to_dict(self.binning),
            "preprocessing": _config_to_dict(self.preprocessing),
            "source": self.source,
            "num_references": self.num_references,
            "dim": self.dim,
            "ann": self.ann.provenance() if self.ann is not None else None,
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Write the index as an uncompressed ``.npz`` (mmap-friendly).

        When ANN tables are attached (:meth:`attach_ann` or
        ``build(..., ann=...)``), their arrays and provenance ride in
        the same archive and are revalidated by :meth:`load`.

        Args:
            path: Destination path; ``.npz`` is appended when missing.

        Returns:
            The actual file written.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        members = {
            "format_version": np.array(INDEX_FORMAT_VERSION, dtype=np.int64),
            "packed": np.ascontiguousarray(self.packed),
            "dim": np.array(self.dim, dtype=np.int64),
            "identifiers": np.array(self.identifiers),
            "peptide_keys": np.array(
                [key if key is not None else "" for key in self.peptide_keys]
            ),
            "is_decoy": self.is_decoy,
            "neutral_masses": self.neutral_masses,
            "charges": self.charges,
            "provenance_json": np.array(json.dumps(self.provenance())),
        }
        if self.ann is not None:
            members.update(self.ann.to_arrays())
            members["ann_json"] = np.array(json.dumps(self.ann.provenance()))
        np.savez(path, **members)
        # np.savez appends ".npz" when missing; report the real file.
        written = path if path.suffix == ".npz" else Path(str(path) + ".npz")
        logger.info(
            "saved index with %d references (%d bytes packed%s) to %s",
            len(self.identifiers),
            self.packed.nbytes,
            ", ANN tables attached" if self.ann is not None else "",
            written,
        )
        return written

    @classmethod
    def load(cls, path: Union[str, Path], mmap: bool = True) -> "LibraryIndex":
        """Reload a persisted index, memory-mapping the bit matrix.

        ``mmap=False`` forces an eager in-memory read (useful when the
        file will be deleted while the index is still in use).
        Persisted ANN tables are reloaded and revalidated against the
        index (row count, dimensionality, format version).

        Args:
            path: Archive previously written by :meth:`save`.
            mmap: Memory-map the packed matrix when possible.

        Returns:
            The reconstructed index.

        Raises:
            IndexCompatibilityError: If the archive is not a
                LibraryIndex, its format version is unsupported, or its
                ANN tables disagree with the index or their own
                provenance.
        """
        path = Path(path)
        with np.load(path, allow_pickle=False) as archive:
            if "format_version" not in archive or "provenance_json" not in archive:
                raise IndexCompatibilityError(
                    f"{path} is not a LibraryIndex archive"
                )
            version = int(archive["format_version"])
            if version != INDEX_FORMAT_VERSION:
                raise IndexCompatibilityError(
                    f"index format version {version} unsupported "
                    f"(expected {INDEX_FORMAT_VERSION})"
                )
            provenance = json.loads(str(archive["provenance_json"][()]))
            packed = None
            if mmap:
                packed = _mmap_npz_array(path, "packed.npy")
            if packed is None:
                packed = archive["packed"]
            dim = int(archive["dim"])
            identifiers = [str(name) for name in archive["identifiers"]]
            peptide_keys = [
                str(key) if str(key) else None
                for key in archive["peptide_keys"]
            ]
            is_decoy = archive["is_decoy"]
            neutral_masses = archive["neutral_masses"]
            charges = archive["charges"]
            ann = None
            if "ann_json" in archive:
                ann_provenance = json.loads(str(archive["ann_json"][()]))
                try:
                    ann = HammingLSHIndex.from_arrays(
                        ann_provenance,
                        {
                            name: archive[name]
                            for name in (
                                "ann_bit_positions",
                                "ann_sorted_keys",
                                "ann_row_order",
                            )
                        },
                    )
                except (KeyError, TypeError, ValueError) as error:
                    raise IndexCompatibilityError(
                        f"persisted ANN tables are unusable: {error}"
                    ) from None
                if ann.num_rows != len(identifiers) or ann.dim != dim:
                    raise IndexCompatibilityError(
                        f"ANN tables cover {ann.num_rows} rows at dim "
                        f"{ann.dim}, index holds {len(identifiers)} rows "
                        f"at dim {dim}"
                    )
        logger.info(
            "loaded index from %s: %d references, dim=%d, mmap=%s, ann=%s",
            path,
            len(identifiers),
            dim,
            isinstance(packed, np.memmap),
            ann is not None,
        )
        return cls(
            packed=packed,
            dim=dim,
            identifiers=identifiers,
            peptide_keys=peptide_keys,
            is_decoy=is_decoy,
            neutral_masses=neutral_masses,
            charges=charges,
            space_config=HDSpaceConfig(**provenance["space"]),
            binning=BinningConfig(**provenance["binning"]),
            preprocessing=PreprocessingConfig(**provenance["preprocessing"]),
            source=provenance.get("source", ""),
            ann=ann,
        )

    # ------------------------------------------------------------------
    # validation / reconstruction
    # ------------------------------------------------------------------

    def validate(
        self,
        space_config: Optional[HDSpaceConfig] = None,
        binning: Optional[BinningConfig] = None,
        preprocessing: Optional[PreprocessingConfig] = None,
    ) -> None:
        """Raise :class:`IndexCompatibilityError` on any config mismatch.

        Only the configs actually passed are checked, so callers can
        pin down exactly the knobs they care about.
        """
        mismatches = []
        for name, stored, requested in (
            ("space", self.space_config, space_config),
            ("binning", self.binning, binning),
            ("preprocessing", self.preprocessing, preprocessing),
        ):
            if requested is not None and requested != stored:
                mismatches.append(
                    f"{name}: index has {stored!r}, caller wants {requested!r}"
                )
        if mismatches:
            raise IndexCompatibilityError(
                "index configuration mismatch:\n  " + "\n  ".join(mismatches)
            )

    def make_space(self) -> HDSpace:
        """Materialise the HD space the index was encoded with."""
        return HDSpace(self.space_config)

    def make_encoder(self) -> SpectrumEncoder:
        """Reconstruct the exact encoder (for query-side encoding)."""
        return SpectrumEncoder(self.make_space(), self.binning)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def num_references(self) -> int:
        """Number of reference rows stored in the index."""
        return len(self.identifiers)

    def __len__(self) -> int:
        return self.num_references

    def hypervectors(self) -> np.ndarray:
        """The full bipolar ``(n, dim)`` int8 matrix (unpacked copy)."""
        return unpack_bipolar(np.asarray(self.packed), self.dim)

    def records(self) -> List[ReferenceRecord]:
        """Spectrum-shaped metadata rows for the search path."""
        return [
            ReferenceRecord(
                identifier=self.identifiers[row],
                peptide=self.peptide_keys[row],
                is_decoy=bool(self.is_decoy[row]),
                neutral_mass=float(self.neutral_masses[row]),
                precursor_charge=int(self.charges[row]),
            )
            for row in range(self.num_references)
        ]

    def nbytes(self) -> int:
        """Approximate in-memory footprint of the packed matrix."""
        return int(np.asarray(self.packed).nbytes)

    def summary(self) -> str:
        """One-line human description (CLI / logging)."""
        decoys = int(self.is_decoy.sum())
        ann_note = ""
        if self.ann is not None:
            ann_note = (
                f", ANN {self.ann.config.num_tables}x"
                f"{self.ann.config.bits_per_hash}b"
            )
        return (
            f"LibraryIndex: {self.num_references} references "
            f"({decoys} decoys), D={self.dim}, "
            f"{self.nbytes() / 1024:.0f} KiB packed, "
            f"charges {sorted(set(self.charges.tolist()))}{ann_note}"
        )
