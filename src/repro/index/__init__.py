"""Persistent encoded-library index and sharded parallel search.

The expensive half of open modification search — encoding a spectral
library into hypervectors — is a pure function of (space config, binning
config, preprocessing config, library).  :class:`LibraryIndex` runs that
function once, persists the packed hypervectors together with the exact
configuration provenance to a single ``.npz`` file, and memory-maps the
bit matrix back on load so a service process can start searching without
re-paying the build cost (the same amortisation argument HyperOMS makes
for GPUs and ANN-SoLo makes for its on-disk ANN index).

:class:`ShardedSearcher` consumes a loaded index, partitions it into N
row shards, and fans query batches across a ``multiprocessing`` pool;
workers score their shard through the existing
:class:`~repro.oms.search.SimilarityBackend` protocol and the parent
merges per-query bests.  Results are bit-identical to
:class:`~repro.oms.search.HDOmsSearcher`.
"""

from .library import (
    INDEX_FORMAT_VERSION,
    IndexCompatibilityError,
    LibraryIndex,
    ReferenceRecord,
)
from .sharded import ShardedSearcher

__all__ = [
    "INDEX_FORMAT_VERSION",
    "IndexCompatibilityError",
    "LibraryIndex",
    "ReferenceRecord",
    "ShardedSearcher",
]
