"""Alternative spectrum encoders the paper rejects (Section 3.2).

"Previous research explored various encoding methods, such as
permutation-based [15] and random projection encoding [3].  However,
these methods may not effectively capture key features, such as m/z
values and peak intensities in the spectra."

Both alternatives are implemented here with the same interface as the
ID-Level :class:`~repro.hdc.encoder.SpectrumEncoder` so the claim can
be tested head-to-head (see ``experiments/ablations.py``):

* **random projection** — the dense binned vector is multiplied by a
  fixed random ±1 matrix and binarised.  Intensities enter linearly but
  the binary projection loses fine m/z structure.
* **permutation-based** — each occupied bin contributes a base
  hypervector cyclically shifted (permuted) by its quantised intensity
  level; position is captured by the per-bin base HV, intensity by the
  shift.  Shifts do not preserve level *similarity* (shift-by-1 is as
  dissimilar as shift-by-15), which is what hurts it.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..ms.spectrum import Spectrum
from ..ms.vectorize import BinningConfig, SparseVector, quantize_intensities, vectorize
from .encoder import sign_with_tiebreak
from .spaces import HDSpace


class RandomProjectionEncoder:
    """Binary random-projection encoding of binned spectra.

    ``h = sign(P v)`` with ``P`` a fixed ±1 matrix of shape
    ``(dim, num_bins)`` and ``v`` the dense binned intensity vector.
    """

    name = "random-projection"

    def __init__(self, space: HDSpace, binning: BinningConfig) -> None:
        if space.config.num_bins != binning.num_bins:
            raise ValueError("space/binning bin-count mismatch")
        self.space = space
        self.binning = binning
        rng = np.random.default_rng(space.config.seed + 0xA11CE)
        self._projection = (
            rng.integers(0, 2, size=(space.dim, binning.num_bins), dtype=np.int8)
            * 2
            - 1
        ).astype(np.float32)

    def encode_vector(self, vector: SparseVector) -> np.ndarray:
        """Encode one binned sparse vector into a bipolar hypervector."""
        if len(vector) == 0:
            return self.space.tiebreak.copy()
        projected = self._projection[:, vector.indices] @ vector.values.astype(
            np.float32
        )
        return sign_with_tiebreak(projected.astype(np.float64), self.space.tiebreak)

    def encode(self, spectrum: Spectrum) -> np.ndarray:
        """Encode one preprocessed spectrum."""
        return self.encode_vector(vectorize(spectrum, self.binning))

    def encode_batch(
        self, spectra: Sequence[Union[Spectrum, SparseVector]]
    ) -> np.ndarray:
        """Encode many spectra; output rows align with the input order."""
        out = np.empty((len(spectra), self.space.dim), dtype=np.int8)
        for row, item in enumerate(spectra):
            if isinstance(item, SparseVector):
                out[row] = self.encode_vector(item)
            else:
                out[row] = self.encode(item)
        return out


class PermutationEncoder:
    """Permutation-based encoding: intensity as a cyclic shift.

    ``h = sign(Σ_i rho^{level_i}(ID_i))`` where ``rho`` is a cyclic
    shift by one position.  Uses the space's ID codebook for bin
    identity; the intensity level selects the shift amount.
    """

    name = "permutation"

    def __init__(self, space: HDSpace, binning: BinningConfig) -> None:
        if space.config.num_bins != binning.num_bins:
            raise ValueError("space/binning bin-count mismatch")
        self.space = space
        self.binning = binning

    def encode_vector(self, vector: SparseVector) -> np.ndarray:
        """Encode one binned sparse vector into a bipolar hypervector."""
        if len(vector) == 0:
            return self.space.tiebreak.copy()
        levels, _ = quantize_intensities(vector.values, self.space.num_levels)
        accumulator = np.zeros(self.space.dim, dtype=np.int64)
        for bin_index, level in zip(vector.indices, levels):
            accumulator += np.roll(
                self.space.id_vector(int(bin_index)).astype(np.int64),
                int(level),
            )
        return sign_with_tiebreak(accumulator, self.space.tiebreak)

    def encode(self, spectrum: Spectrum) -> np.ndarray:
        """Encode one preprocessed spectrum."""
        return self.encode_vector(vectorize(spectrum, self.binning))

    def encode_batch(
        self, spectra: Sequence[Union[Spectrum, SparseVector]]
    ) -> np.ndarray:
        """Encode many spectra; output rows align with the input order."""
        out = np.empty((len(spectra), self.space.dim), dtype=np.int8)
        for row, item in enumerate(spectra):
            if isinstance(item, SparseVector):
                out[row] = self.encode_vector(item)
            else:
                out[row] = self.encode(item)
        return out
