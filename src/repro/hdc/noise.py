"""Bit-error injection for the HD-robustness study (paper Section 5.3.2).

Figure 11 sweeps bit error rates {0.15%, 1%, 5%, 10%, 20%} injected into
"encoding and search" — i.e. random sign flips on binary hypervectors —
and shows identifications stay flat up to ~10% BER.  These helpers apply
exactly that perturbation, plus a level-shift error model for multi-bit
cell values used by the RRAM storage experiments.
"""

from __future__ import annotations

import numpy as np


def flip_bits(
    vectors: np.ndarray,
    bit_error_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Return a copy of bipolar *vectors* with random sign flips.

    Each component independently flips with probability
    ``bit_error_rate``.  Shape is preserved; input is not modified.
    """
    if not 0 <= bit_error_rate <= 1:
        raise ValueError(f"bit_error_rate must be in [0, 1], got {bit_error_rate}")
    vectors = np.asarray(vectors)
    if bit_error_rate == 0:
        return vectors.copy()
    flips = rng.random(vectors.shape) < bit_error_rate
    noisy = vectors.copy()
    noisy[flips] = -noisy[flips]
    return noisy


def measured_bit_error_rate(clean: np.ndarray, noisy: np.ndarray) -> float:
    """Fraction of differing components between two bipolar arrays."""
    clean = np.asarray(clean)
    noisy = np.asarray(noisy)
    if clean.shape != noisy.shape:
        raise ValueError(f"shape mismatch: {clean.shape} vs {noisy.shape}")
    if clean.size == 0:
        return 0.0
    return float(np.mean(clean != noisy))


def shift_cell_levels(
    cells: np.ndarray,
    level_error_rate: float,
    num_levels: int,
    rng: np.random.Generator,
    max_shift: int = 1,
) -> np.ndarray:
    """Perturb MLC cell values by +-shift with probability per cell.

    Models the dominant MLC failure mode: a cell read one level off its
    programmed target (conductance relaxation rarely jumps several
    levels).  Values are clipped to ``[0, num_levels - 1]``.
    """
    if not 0 <= level_error_rate <= 1:
        raise ValueError(
            f"level_error_rate must be in [0, 1], got {level_error_rate}"
        )
    cells = np.asarray(cells)
    noisy = cells.astype(np.int16, copy=True)
    if level_error_rate == 0:
        return noisy.astype(cells.dtype)
    affected = rng.random(cells.shape) < level_error_rate
    shifts = rng.integers(1, max_shift + 1, size=cells.shape) * np.where(
        rng.random(cells.shape) < 0.5, -1, 1
    )
    noisy[affected] += shifts[affected]
    np.clip(noisy, 0, num_levels - 1, out=noisy)
    return noisy.astype(cells.dtype)


def perturb_accumulator(
    accumulator: np.ndarray,
    relative_noise: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Add Gaussian noise scaled to the accumulator's RMS value.

    Models analog MAC noise ahead of the Sign() quantiser during
    in-memory encoding; the paper notes single-bit output quantisation
    makes this stage naturally error-tolerant (Section 4.2.3).
    """
    if relative_noise < 0:
        raise ValueError(f"relative_noise must be >= 0, got {relative_noise}")
    accumulator = np.asarray(accumulator, dtype=np.float64)
    if relative_noise == 0:
        return accumulator.copy()
    rms = float(np.sqrt(np.mean(accumulator**2))) or 1.0
    return accumulator + rng.normal(0.0, relative_noise * rms, accumulator.shape)
