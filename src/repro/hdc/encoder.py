"""ID-Level spectrum encoding (paper Eq. 1).

``h = Sign( sum_{i in S} ID_i ⊗ LV_i )`` — for each retained peak, the
m/z-bin ID hypervector is bound (element-wise product) to the level
hypervector of its quantised intensity; the bound pairs are bundled
(summed) and binarised.  Ties at exactly zero are broken by the space's
fixed tiebreak vector so encoding is a pure function of (space,
spectrum).

Two equivalent implementations are provided:

* the *scalar* path (:meth:`SpectrumEncoder.accumulate` /
  :meth:`SpectrumEncoder.encode`) — one spectrum at a time, kept as the
  readable reference implementation and for one-off encodes;
* the *fused batch* path (:meth:`SpectrumEncoder.accumulate_batch` /
  :meth:`SpectrumEncoder.encode_batch`) — all peaks of a batch are
  concatenated into one flat index/level array, ID rows and level
  vectors are gathered in two fancy-index operations from contiguous
  codebooks, bound with a single element-wise multiply, and
  segment-summed per spectrum into an int32 accumulator block.
  Integer arithmetic makes the two paths bit-identical.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from ..ms.spectrum import Spectrum
from ..ms.vectorize import BinningConfig, SparseVector, quantize_intensities, vectorize
from ..obs.trace import get_tracer
from .spaces import HDSpace

#: Concatenated peak rows the fused batch encoder gathers per block.
#: Sized for cache residency, not just memory safety: at D=2048-8192 a
#: block's gathered ID/level operands (~``2 * _MAX_FLAT_PEAKS * dim``
#: bytes int8) stay in L2/L3, so the bind-multiply and segment sums
#: never round-trip through RAM.  Measured ~2x faster than gathering
#: the whole batch at once and ~4x faster than ``np.add.reduceat``
#: over one giant block.
_MAX_FLAT_PEAKS = 128


def sign_with_tiebreak(
    accumulator: np.ndarray, tiebreak: np.ndarray
) -> np.ndarray:
    """Binarise an accumulator to {-1, +1} int8, zeros -> tiebreak."""
    result = np.sign(accumulator).astype(np.int8)
    zero = result == 0
    if zero.any():
        result[zero] = tiebreak[zero] if accumulator.ndim == 1 else np.broadcast_to(
            tiebreak, accumulator.shape
        )[zero]
    return result


class SpectrumEncoder:
    """Encode binned spectra into bipolar hypervectors.

    Parameters
    ----------
    space:
        The :class:`HDSpace` providing ID/level codebooks.  Its
        ``num_bins`` must match ``binning.num_bins``.
    binning:
        m/z binning configuration used to vectorise raw spectra.
    """

    def __init__(self, space: HDSpace, binning: BinningConfig) -> None:
        if space.config.num_bins != binning.num_bins:
            raise ValueError(
                f"space has {space.config.num_bins} bins but binning "
                f"produces {binning.num_bins}"
            )
        self.space = space
        self.binning = binning

    def accumulate(self, vector: SparseVector) -> np.ndarray:
        """The pre-sign accumulator of Eq. 1 as an int32 vector.

        Exposed separately because the RRAM encoder reproduces exactly
        this quantity in analog and we compare against it in tests.
        """
        dim = self.space.dim
        if len(vector) == 0:
            return np.zeros(dim, dtype=np.int32)
        levels, _scale = quantize_intensities(
            vector.values, self.space.num_levels
        )
        ids = self.space.id_matrix(vector.indices).astype(np.int32)
        level_vectors = self.space.level_vectors[levels].astype(np.int32)
        return np.einsum("pd,pd->d", ids, level_vectors, optimize=True)

    def _quantize_flat(
        self, flat_values: np.ndarray, starts: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Per-spectrum intensity quantisation over concatenated values.

        Reproduces :func:`~repro.ms.vectorize.quantize_intensities`
        bit-for-bit: each spectrum's scale is its own maximum, spectra
        with a non-positive maximum quantise to level 0 throughout.
        """
        num_levels = self.space.num_levels
        maxima = np.maximum.reduceat(flat_values, starts)
        scales = np.repeat(maxima, counts)
        levels = np.zeros(flat_values.shape[0], dtype=np.int64)
        positive = scales > 0
        if positive.any():
            levels[positive] = np.minimum(
                np.floor(
                    flat_values[positive] / scales[positive] * num_levels
                ).astype(np.int64),
                num_levels - 1,
            )
        return levels

    def accumulate_batch(
        self, vectors: Sequence[SparseVector]
    ) -> np.ndarray:
        """Pre-sign accumulators for many spectra as ``(n, dim)`` int32.

        The fused pipeline: all peaks are concatenated into one flat
        bin-index/level array with per-spectrum offsets, ID rows and
        level vectors are gathered from the contiguous codebooks in two
        fancy-index operations, bound with one in-place multiply, and
        segment-summed per spectrum into an int32 accumulator block.
        Rows for empty spectra stay all-zero (sign resolves them to the
        tiebreak vector, exactly like the scalar path).  Blocks of at
        most ``_MAX_FLAT_PEAKS`` concatenated peaks keep the gathered
        operands cache-resident; integer arithmetic keeps every block
        bit-identical to per-row :meth:`accumulate` calls.
        """
        num = len(vectors)
        dim = self.space.dim
        out = np.zeros((num, dim), dtype=np.int32)
        nonempty = [row for row, vector in enumerate(vectors) if len(vector)]
        if not nonempty:
            return out
        counts = np.array(
            [len(vectors[row]) for row in nonempty], dtype=np.int64
        )
        flat_bins = np.concatenate(
            [np.asarray(vectors[row].indices, dtype=np.int64) for row in nonempty]
        )
        flat_values = np.concatenate(
            [
                np.asarray(vectors[row].values, dtype=np.float64)
                for row in nonempty
            ]
        )
        starts = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        flat_levels = self._quantize_flat(flat_values, starts, counts)

        space = self.space
        level_vectors = space.level_vectors
        accumulators = np.empty((len(nonempty), dim), dtype=np.int32)
        block_start = 0
        while block_start < len(counts):
            # Grow the block while the concatenated peak count stays
            # bounded; a single spectrum larger than the cap still gets
            # its own (oversized) block.
            block_end = block_start + 1
            peaks = int(counts[block_start])
            while (
                block_end < len(counts)
                and peaks + int(counts[block_end]) <= _MAX_FLAT_PEAKS
            ):
                peaks += int(counts[block_end])
                block_end += 1
            low = int(starts[block_start])
            high = low + peaks
            # (peaks, dim) int8 copy; the space gathers from its
            # contiguous bank once cumulative demand warrants building
            # it, and from lazily cached per-bin rows before that.
            bound = space.gather_id_rows(flat_bins[low:high])
            # |ID| <= 4 and LV in {-1, +1}, so the bound product fits
            # int8; accumulation happens in int32 inside the reduction.
            np.multiply(
                bound, level_vectors[flat_levels[low:high]], out=bound
            )
            # Segment sum: contiguous row-range reductions per spectrum.
            # A tight loop of pairwise SIMD reductions beats
            # np.add.reduceat here by ~20x — reduceat's strided inner
            # loop degrades badly on axis-0 (peaks, dim) segments.
            block_starts = starts[block_start:block_end] - low
            block_ends = np.append(block_starts[1:], peaks)
            for offset, (seg_low, seg_high) in enumerate(
                zip(block_starts, block_ends)
            ):
                np.sum(
                    bound[seg_low:seg_high],
                    axis=0,
                    dtype=np.int32,
                    out=accumulators[block_start + offset],
                )
            block_start = block_end
        out[nonempty] = accumulators
        return out

    def encode_vector(self, vector: SparseVector) -> np.ndarray:
        """Encode one sparse binned vector into a bipolar hypervector."""
        accumulator = self.accumulate(vector)
        return sign_with_tiebreak(accumulator, self.space.tiebreak)

    def encode(self, spectrum: Spectrum) -> np.ndarray:
        """Encode one (already preprocessed) spectrum."""
        return self.encode_vector(vectorize(spectrum, self.binning))

    def encode_batch(
        self, spectra: Sequence[Union[Spectrum, SparseVector]]
    ) -> np.ndarray:
        """Encode many spectra into an ``(n, dim)`` int8 matrix.

        Runs the fused vectorized pipeline (see
        :meth:`accumulate_batch`); output is bit-identical to calling
        :meth:`encode` / :meth:`encode_vector` row by row.
        """
        with get_tracer().span("encode.batch", batch=len(spectra), dim=self.space.dim):
            vectors: List[SparseVector] = [
                item
                if isinstance(item, SparseVector)
                else vectorize(item, self.binning)
                for item in spectra
            ]
            accumulators = self.accumulate_batch(vectors)
            return sign_with_tiebreak(accumulators, self.space.tiebreak)

    def peak_operands(self, vector: SparseVector):
        """The (ID matrix, level indices) pair for one spectrum.

        This is the exact operand layout the in-memory encoder maps onto
        the crossbar: ID rows are the stored weights, level indices pick
        the input chunk patterns.  Returned as ``(ids int8 (p, dim),
        levels int64 (p,))``.
        """
        levels, _scale = quantize_intensities(
            vector.values, self.space.num_levels
        )
        ids = self.space.id_matrix(vector.indices)
        return ids, levels
