"""ID-Level spectrum encoding (paper Eq. 1).

``h = Sign( sum_{i in S} ID_i ⊗ LV_i )`` — for each retained peak, the
m/z-bin ID hypervector is bound (element-wise product) to the level
hypervector of its quantised intensity; the bound pairs are bundled
(summed) and binarised.  Ties at exactly zero are broken by the space's
fixed tiebreak vector so encoding is a pure function of (space,
spectrum).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..ms.spectrum import Spectrum
from ..ms.vectorize import BinningConfig, SparseVector, quantize_intensities, vectorize
from .spaces import HDSpace


def sign_with_tiebreak(
    accumulator: np.ndarray, tiebreak: np.ndarray
) -> np.ndarray:
    """Binarise an accumulator to {-1, +1} int8, zeros -> tiebreak."""
    result = np.sign(accumulator).astype(np.int8)
    zero = result == 0
    if zero.any():
        result[zero] = tiebreak[zero] if accumulator.ndim == 1 else np.broadcast_to(
            tiebreak, accumulator.shape
        )[zero]
    return result


class SpectrumEncoder:
    """Encode binned spectra into bipolar hypervectors.

    Parameters
    ----------
    space:
        The :class:`HDSpace` providing ID/level codebooks.  Its
        ``num_bins`` must match ``binning.num_bins``.
    binning:
        m/z binning configuration used to vectorise raw spectra.
    """

    def __init__(self, space: HDSpace, binning: BinningConfig) -> None:
        if space.config.num_bins != binning.num_bins:
            raise ValueError(
                f"space has {space.config.num_bins} bins but binning "
                f"produces {binning.num_bins}"
            )
        self.space = space
        self.binning = binning

    def accumulate(self, vector: SparseVector) -> np.ndarray:
        """The pre-sign accumulator of Eq. 1 as an int32 vector.

        Exposed separately because the RRAM encoder reproduces exactly
        this quantity in analog and we compare against it in tests.
        """
        dim = self.space.dim
        if len(vector) == 0:
            return np.zeros(dim, dtype=np.int32)
        levels, _scale = quantize_intensities(
            vector.values, self.space.num_levels
        )
        ids = self.space.id_matrix(vector.indices.tolist()).astype(np.int32)
        level_vectors = self.space.level_vectors[levels].astype(np.int32)
        return np.einsum("pd,pd->d", ids, level_vectors, optimize=True)

    def encode_vector(self, vector: SparseVector) -> np.ndarray:
        """Encode one sparse binned vector into a bipolar hypervector."""
        accumulator = self.accumulate(vector)
        return sign_with_tiebreak(accumulator, self.space.tiebreak)

    def encode(self, spectrum: Spectrum) -> np.ndarray:
        """Encode one (already preprocessed) spectrum."""
        return self.encode_vector(vectorize(spectrum, self.binning))

    def encode_batch(
        self, spectra: Sequence[Union[Spectrum, SparseVector]]
    ) -> np.ndarray:
        """Encode many spectra into an ``(n, dim)`` int8 matrix."""
        out = np.empty((len(spectra), self.space.dim), dtype=np.int8)
        for row, item in enumerate(spectra):
            if isinstance(item, SparseVector):
                out[row] = self.encode_vector(item)
            else:
                out[row] = self.encode(item)
        return out

    def peak_operands(self, vector: SparseVector):
        """The (ID matrix, level indices) pair for one spectrum.

        This is the exact operand layout the in-memory encoder maps onto
        the crossbar: ID rows are the stored weights, level indices pick
        the input chunk patterns.  Returned as ``(ids int8 (p, dim),
        levels int64 (p,))``.
        """
        levels, _scale = quantize_intensities(
            vector.values, self.space.num_levels
        )
        ids = self.space.id_matrix(vector.indices.tolist())
        return ids, levels
