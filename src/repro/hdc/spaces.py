"""HDSpace: the seeded universe of ID and level hypervectors.

An :class:`HDSpace` owns every random codebook the encoder needs:

* one *ID* hypervector per m/z bin (paper Section 3.2), at 1-, 2- or
  3-bit precision (Section 4.2.2's multi-bit scheme: entries drawn from
  a sign-symmetric set excluding zero, e.g. {-4..-1, 1..4} at 3 bits);
* ``Q`` correlated *level* hypervectors for quantised intensities,
  either the classic flip construction or the hardware-friendly chunked
  one (Section 4.2.1);
* a fixed tiebreak vector so the ``sign`` in Eq. 1 is deterministic.

ID vectors are generated lazily per bin from a counter-based seed and
cached, so a space over 14k bins at D=8192 only materialises the rows a
workload actually touches.  Batch encoding instead materialises the
whole codebook once as a contiguous ``(num_bins, dim)`` *ID bank*
(:meth:`HDSpace.id_bank`) so per-peak rows become one fancy-index
gather instead of a Python loop; the bank reuses any rows the lazy
cache already generated and both views stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from .levels import ChunkedLevels, chunked_levels, flip_levels

#: Allowed ID precisions and the magnitude range they imply.
_ID_MAGNITUDES = {1: 1, 2: 2, 3: 4}


@dataclass(frozen=True)
class HDSpaceConfig:
    """Configuration of a hyperdimensional space.

    ``dim`` is the hypervector dimension D (paper default 8192);
    ``num_bins`` the m/z codebook size; ``num_levels`` the intensity
    quantisation Q (paper: 16-32); ``id_precision_bits`` in {1, 2, 3}
    (Section 4.2.2); ``chunked`` selects the chunked level scheme with
    ``num_chunks`` chunks (default ``4 * num_levels``).
    """

    dim: int = 8192
    num_bins: int = 1400
    num_levels: int = 32
    id_precision_bits: int = 3
    chunked: bool = True
    num_chunks: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim < 4:
            raise ValueError(f"dim must be >= 4, got {self.dim}")
        if self.num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        if self.num_levels < 2:
            raise ValueError("num_levels must be >= 2")
        if self.id_precision_bits not in _ID_MAGNITUDES:
            raise ValueError(
                f"id_precision_bits must be one of {sorted(_ID_MAGNITUDES)}, "
                f"got {self.id_precision_bits}"
            )

    @property
    def resolved_num_chunks(self) -> int:
        """The chunk count actually used when ``chunked`` is enabled."""
        if self.num_chunks is not None:
            return self.num_chunks
        return min(self.dim, 4 * self.num_levels)


class HDSpace:
    """Materialised hypervector codebooks for one configuration."""

    def __init__(self, config: HDSpaceConfig) -> None:
        self.config = config
        root = np.random.default_rng(config.seed)
        # Independent child seeds for each codebook so changing one knob
        # (e.g. num_levels) does not reshuffle the others.
        self._id_seed = int(root.integers(0, 2**63))
        level_rng = np.random.default_rng(int(root.integers(0, 2**63)))
        tiebreak_rng = np.random.default_rng(int(root.integers(0, 2**63)))

        self.chunked_levels: Optional[ChunkedLevels] = None
        if config.chunked:
            self.chunked_levels = chunked_levels(
                config.dim,
                config.num_levels,
                config.resolved_num_chunks,
                level_rng,
            )
            self.level_vectors = self.chunked_levels.expand()
        else:
            self.level_vectors = flip_levels(
                config.dim, config.num_levels, level_rng
            )
        #: ±1 vector used to break ties when the Eq. 1 accumulator is 0.
        self.tiebreak = (
            tiebreak_rng.integers(0, 2, size=config.dim, dtype=np.int8) * 2 - 1
        ).astype(np.int8)
        self._id_cache: Dict[int, np.ndarray] = {}
        self._id_bank: Optional[np.ndarray] = None
        #: Cumulative rows requested through gather_id_rows; once this
        #: reaches num_bins the contiguous bank pays for itself.
        self._id_demand = 0

    @property
    def dim(self) -> int:
        """Hypervector dimensionality."""
        return self.config.dim

    @property
    def num_levels(self) -> int:
        """Number of intensity quantisation levels."""
        return self.config.num_levels

    def _make_id(self, bin_index: int) -> np.ndarray:
        """Deterministically generate the ID hypervector of one bin."""
        rng = np.random.default_rng((self._id_seed, bin_index))
        magnitude = _ID_MAGNITUDES[self.config.id_precision_bits]
        values = rng.integers(1, magnitude + 1, size=self.config.dim)
        signs = rng.integers(0, 2, size=self.config.dim) * 2 - 1
        return (values * signs).astype(np.int8)

    def id_vector(self, bin_index: int) -> np.ndarray:
        """ID hypervector for *bin_index* (cached, read-only)."""
        if not 0 <= bin_index < self.config.num_bins:
            raise IndexError(
                f"bin_index {bin_index} outside [0, {self.config.num_bins})"
            )
        cached = self._id_cache.get(bin_index)
        if cached is None:
            if self._id_bank is not None:
                # Views of the read-only bank inherit its write protection.
                cached = self._id_bank[bin_index]
            else:
                cached = self._make_id(bin_index)
                cached.setflags(write=False)
            self._id_cache[bin_index] = cached
        return cached

    def id_bank(self) -> np.ndarray:
        """The full ID codebook as one contiguous ``(num_bins, dim)`` int8.

        Built lazily on first use (reusing any rows the per-bin cache
        already generated) and then shared: this is the gather target of
        the fused batch encoder, turning per-peak row stacking into one
        fancy-index operation.  The bank is read-only.
        """
        if self._id_bank is None:
            bank = np.empty(
                (self.config.num_bins, self.config.dim), dtype=np.int8
            )
            for bin_index in range(self.config.num_bins):
                cached = self._id_cache.get(bin_index)
                bank[bin_index] = (
                    cached if cached is not None else self._make_id(bin_index)
                )
            bank.setflags(write=False)
            self._id_bank = bank
        return self._id_bank

    def gather_id_rows(self, bin_indices: np.ndarray) -> np.ndarray:
        """Gather bin rows into ``(n, dim)`` int8, adaptively.

        Once the contiguous bank is materialised — or cumulative demand
        across calls reaches ``num_bins``, at which point building it
        pays for itself — rows come from one bank fancy-index.  Before
        that, only the *distinct* bins actually touched are generated
        (through the lazy per-bin cache) and gathered from a compact
        per-call matrix, so a small one-off workload never pays
        full-codebook generation (~100-200 ms at D=2048-8192).

        Out-of-range indices raise :class:`IndexError` on both paths
        (negative indices would otherwise silently wrap in the bank
        gather; the check is O(n) against an O(n * dim) gather).
        """
        if bin_indices.size and (
            int(bin_indices.min()) < 0
            or int(bin_indices.max()) >= self.config.num_bins
        ):
            raise IndexError(
                f"bin indices outside [0, {self.config.num_bins})"
            )
        if self._id_bank is None:
            self._id_demand += len(bin_indices)
            if self._id_demand < self.config.num_bins:
                if len(bin_indices) == 0:
                    return np.empty((0, self.config.dim), dtype=np.int8)
                unique, compact = np.unique(bin_indices, return_inverse=True)
                rows = np.stack(
                    [self.id_vector(int(b)) for b in unique]
                )
                return rows[compact]
        return self.id_bank()[bin_indices]

    def id_matrix(self, bin_indices: Iterable[int]) -> np.ndarray:
        """Stack ID hypervectors for several bins into ``(n, dim)`` int8.

        Accepts any integer iterable *or* an ndarray (no ``.tolist()``
        round trip); rows are gathered in one fancy-index operation via
        :meth:`gather_id_rows`.
        """
        indices = np.asarray(
            bin_indices if isinstance(bin_indices, np.ndarray)
            else list(bin_indices),
            dtype=np.int64,
        )
        return self.gather_id_rows(indices)

    def level_vector(self, level: int) -> np.ndarray:
        """Level hypervector for quantised intensity *level*."""
        if not 0 <= level < self.config.num_levels:
            raise IndexError(
                f"level {level} outside [0, {self.config.num_levels})"
            )
        return self.level_vectors[level]

    def cache_size(self) -> int:
        """Number of ID vectors generated so far (for memory accounting)."""
        return len(self._id_cache)
