"""Hyperdimensional computing core (paper Section 3).

Provides the seeded hypervector universe (:class:`HDSpace`), the
ID-Level spectrum encoder (Eq. 1), Hamming similarity search backends,
bit/cell packing used by MLC storage, and bit-error injection for the
robustness experiments.
"""

from .spaces import HDSpace, HDSpaceConfig
from .levels import (
    ChunkedLevels,
    chunked_levels,
    flip_levels,
    level_similarity_profile,
)
from .encoder import SpectrumEncoder, sign_with_tiebreak
from .similarity import (
    PackedReferenceSet,
    batch_dot_similarity,
    dot_similarity,
    hamming_similarity,
    packed_dot_scores,
    packed_hamming_distance,
    top_k,
)
from .packing import (
    bipolar_to_bits,
    bits_to_bipolar,
    cells_per_hypervector,
    hamming_rowsums,
    pack_bipolar,
    pack_cells,
    popcount,
    unpack_bipolar,
    unpack_cells,
)
from .noise import (
    flip_bits,
    measured_bit_error_rate,
    perturb_accumulator,
    shift_cell_levels,
)
from .alt_encoders import PermutationEncoder, RandomProjectionEncoder

__all__ = [
    "HDSpace",
    "HDSpaceConfig",
    "ChunkedLevels",
    "chunked_levels",
    "flip_levels",
    "level_similarity_profile",
    "SpectrumEncoder",
    "sign_with_tiebreak",
    "PackedReferenceSet",
    "batch_dot_similarity",
    "dot_similarity",
    "hamming_similarity",
    "packed_hamming_distance",
    "top_k",
    "bipolar_to_bits",
    "bits_to_bipolar",
    "cells_per_hypervector",
    "hamming_rowsums",
    "pack_bipolar",
    "pack_cells",
    "packed_dot_scores",
    "popcount",
    "unpack_bipolar",
    "unpack_cells",
    "flip_bits",
    "measured_bit_error_rate",
    "perturb_accumulator",
    "shift_cell_levels",
    "PermutationEncoder",
    "RandomProjectionEncoder",
]
