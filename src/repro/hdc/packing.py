"""Bit packing and MLC cell packing for hypervector storage.

Two layouts are needed:

* *packed bits* — one bit per dimension (+1 -> 1, -1 -> 0) in uint8
  words, used by the digital XOR/popcount search path;
* *cell groups* (paper Section 4.3) — the D-bit hypervector reshaped
  into ``D/n`` unsigned ``n``-bit integers (n = 1, 2, 3 bits per cell),
  which are then mapped to MLC RRAM conductances
  ``g = h' / h'_max * g_max``.

When ``D`` is not divisible by ``n`` the tail is zero-padded; the
original dimension is passed back in when unpacking so the pad is
dropped.
"""

from __future__ import annotations

import numpy as np

_POPCOUNT_TABLE = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def _popcount_lut(words: np.ndarray) -> np.ndarray:
    """Table-lookup population count (works on every NumPy version)."""
    return _POPCOUNT_TABLE[words].astype(np.int64)


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element population count of a uint8 array (any shape).

        Uses the native ``np.bitwise_count`` ufunc (hardware popcnt, no
        gather through a lookup table); :func:`_popcount_lut` is the
        bit-identical fallback for NumPy < 2.0.
        """
        return np.bitwise_count(words).astype(np.int64)

else:  # pragma: no cover - exercised only on NumPy < 2.0

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element population count of a uint8 array (any shape)."""
        return _popcount_lut(words)


def hamming_rowsums(packed_a: np.ndarray, packed_b: np.ndarray) -> np.ndarray:
    """Row-wise Hamming distances between packed bit arrays, fused.

    Equivalent to ``popcount(packed_a ^ packed_b).sum(axis=-1)`` but
    keeps the per-word counts in the uint8 XOR buffer itself (the
    native ``bitwise_count`` path counts in place) instead of
    materialising an int64 matrix 8x the packed size.  On contiguous
    slabs the XOR and popcount ufuncs release the GIL, which is what
    lets thread-pool scoring overlap across shards.  Broadcasting
    applies as in :func:`np.bitwise_xor`; the summed axis is the last.
    """
    xored = np.bitwise_xor(packed_a, packed_b)
    if hasattr(np, "bitwise_count"):
        counts = np.bitwise_count(xored, out=xored)
    else:  # pragma: no cover - exercised only on NumPy < 2.0
        counts = _POPCOUNT_TABLE[xored]
    return counts.sum(axis=-1, dtype=np.int64)


def pack_bipolar(vectors: np.ndarray) -> np.ndarray:
    """Pack bipolar {-1,+1} rows into uint8 words (+1 -> bit 1).

    Accepts ``(D,)`` or ``(n, D)``; returns uint8 with the last axis
    packed (``ceil(D/8)`` words).
    """
    bits = (np.asarray(vectors) > 0).astype(np.uint8)
    return np.packbits(bits, axis=-1)


def unpack_bipolar(packed: np.ndarray, dim: int) -> np.ndarray:
    """Invert :func:`pack_bipolar`; ``dim`` trims the bit padding."""
    bits = np.unpackbits(packed, axis=-1)[..., :dim]
    return (bits.astype(np.int8) * 2 - 1).astype(np.int8)


def bipolar_to_bits(vectors: np.ndarray) -> np.ndarray:
    """Map {-1,+1} -> {0,1} uint8 (elementwise, any shape)."""
    return (np.asarray(vectors) > 0).astype(np.uint8)


def bits_to_bipolar(bits: np.ndarray) -> np.ndarray:
    """Map {0,1} -> {-1,+1} int8 (elementwise, any shape)."""
    return (np.asarray(bits).astype(np.int8) * 2 - 1).astype(np.int8)


def pack_cells(vectors: np.ndarray, bits_per_cell: int) -> np.ndarray:
    """Reshape bipolar hypervectors into n-bit cell values (Section 4.3).

    Consecutive groups of ``bits_per_cell`` bits become one unsigned
    integer in ``[0, 2**bits_per_cell)``; the first bit in a group is the
    most significant.  Accepts ``(D,)`` or ``(rows, D)`` input and
    returns ``(ceil(D/n),)`` or ``(rows, ceil(D/n))`` uint8.
    """
    if bits_per_cell not in (1, 2, 3):
        raise ValueError(f"bits_per_cell must be 1, 2 or 3, got {bits_per_cell}")
    single = np.asarray(vectors).ndim == 1
    bits = np.atleast_2d(bipolar_to_bits(vectors))
    rows, dim = bits.shape
    padded = -(-dim // bits_per_cell) * bits_per_cell
    if padded != dim:
        bits = np.concatenate(
            [bits, np.zeros((rows, padded - dim), dtype=np.uint8)], axis=1
        )
    grouped = bits.reshape(rows, padded // bits_per_cell, bits_per_cell)
    weights = (1 << np.arange(bits_per_cell - 1, -1, -1)).astype(np.uint8)
    cells = (grouped * weights).sum(axis=2).astype(np.uint8)
    return cells[0] if single else cells


def unpack_cells(
    cells: np.ndarray, bits_per_cell: int, dim: int
) -> np.ndarray:
    """Invert :func:`pack_cells` back to bipolar hypervectors."""
    if bits_per_cell not in (1, 2, 3):
        raise ValueError(f"bits_per_cell must be 1, 2 or 3, got {bits_per_cell}")
    single = np.asarray(cells).ndim == 1
    values = np.atleast_2d(np.asarray(cells, dtype=np.uint8))
    shifts = np.arange(bits_per_cell - 1, -1, -1, dtype=np.uint8)
    bits = (values[..., np.newaxis] >> shifts) & 1
    flat = bits.reshape(values.shape[0], -1)[:, :dim]
    bipolar = bits_to_bipolar(flat)
    return bipolar[0] if single else bipolar


def cells_per_hypervector(dim: int, bits_per_cell: int) -> int:
    """Number of MLC cells needed to store one D-bit hypervector."""
    return -(-dim // bits_per_cell)
