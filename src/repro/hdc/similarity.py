"""Hamming similarity search in hyperspace (paper Section 3.3).

For bipolar hypervectors the Hamming similarity (count of equal
components) and the dot product are affinely related:

    dot(a, b) = (#equal) - (#different) = 2 * hamming_sim - D
    hamming_sim = (dot(a, b) + D) / 2

so ranking by dot product is ranking by Hamming similarity.  Two exact
backends are provided: a dense float32 matmul (BLAS-backed, exact for
D < 2^24 since all sums are small integers) and a packed uint64
XOR/popcount path that matches what digital hardware would do.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .packing import hamming_rowsums, pack_bipolar

__all__ = [
    "dot_similarity",
    "hamming_similarity",
    "batch_dot_similarity",
    "packed_hamming_distance",
    "packed_dot_scores",
    "PackedReferenceSet",
    "top_k",
]


def dot_similarity(a: np.ndarray, b: np.ndarray) -> int:
    """Dot product of two bipolar hypervectors as a Python int."""
    return int(np.dot(a.astype(np.int32), b.astype(np.int32)))


def hamming_similarity(a: np.ndarray, b: np.ndarray) -> int:
    """Number of equal components between two bipolar hypervectors."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return (dot_similarity(a, b) + a.shape[-1]) // 2


def batch_dot_similarity(
    queries: np.ndarray, references: np.ndarray
) -> np.ndarray:
    """Dot products between all query/reference pairs.

    ``queries`` is ``(q, D)`` or ``(D,)``; ``references`` is ``(n, D)``.
    Returns int32 of shape ``(q, n)`` (or ``(n,)`` for a single query).
    float32 matmul is exact here: every partial sum is an integer with
    magnitude <= D * max|ID| « 2^24.
    """
    single = queries.ndim == 1
    q = np.atleast_2d(queries).astype(np.float32)
    r = references.astype(np.float32)
    scores = (q @ r.T).astype(np.int32)
    return scores[0] if single else scores


def packed_hamming_distance(
    packed_a: np.ndarray, packed_b: np.ndarray
) -> np.ndarray:
    """Hamming distance between packed bit rows (uint8 words).

    Accepts ``(words,)`` or ``(n, words)`` arrays; broadcasting applies.
    This is the digital-hardware reference implementation (XOR +
    popcount) used to cross-check the matmul path.
    """
    return hamming_rowsums(packed_a, packed_b)


def packed_dot_scores(
    packed_rows: np.ndarray,
    packed_query: np.ndarray,
    dim: int,
    block_rows: Optional[int] = None,
) -> np.ndarray:
    """Dot-product scores of packed rows against one packed query.

    ``dot = dim - 2 * hamming`` for bipolar vectors, returned as int32
    (matching the dense backend).  With ``block_rows`` set, rows are
    scored in blocks of that many at a time so the XOR buffer stays
    cache-resident instead of streaming a ``(rows, words)`` temporary
    through memory — bit-identical either way, since every row's score
    is an independent integer.
    """
    rows = np.asarray(packed_rows)
    num_rows = rows.shape[0]
    if not block_rows or num_rows <= block_rows:
        return (dim - 2 * hamming_rowsums(rows, packed_query)).astype(np.int32)
    out = np.empty(num_rows, dtype=np.int32)
    for start in range(0, num_rows, block_rows):
        block = rows[start : start + block_rows]
        out[start : start + len(block)] = (
            dim - 2 * hamming_rowsums(block, packed_query)
        ).astype(np.int32)
    return out


class PackedReferenceSet:
    """A reference library held in packed-bit form for Hamming search.

    Mirrors how the digital baseline (HyperOMS on GPU) stores its
    library: one bit per dimension.  ``search`` returns dot-product
    scores so results are directly comparable with the dense backend.
    """

    def __init__(self, references: np.ndarray) -> None:
        if references.ndim != 2:
            raise ValueError("references must be (n, D) bipolar")
        self.dim = references.shape[1]
        self.packed = pack_bipolar(references)

    def __len__(self) -> int:
        return self.packed.shape[0]

    def search(self, query: np.ndarray) -> np.ndarray:
        """Dot-product scores of *query* against every reference."""
        packed_query = pack_bipolar(query[np.newaxis, :])[0]
        distances = packed_hamming_distance(self.packed, packed_query)
        return (self.dim - 2 * distances.astype(np.int64)).astype(np.int32)


def top_k(
    scores: np.ndarray, k: int, mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Indices of the k largest scores (descending), optionally masked.

    ``mask`` marks eligible entries; ineligible ones never appear in the
    result.  Deterministic: ties broken by lower index first.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    scores = np.asarray(scores)
    if mask is not None:
        eligible = np.flatnonzero(mask)
        if len(eligible) == 0:
            return np.empty(0, dtype=np.int64)
        sub = scores[eligible]
        order = np.argsort(-sub, kind="stable")[:k]
        return eligible[order]
    order = np.argsort(-scores, kind="stable")[:k]
    return order
