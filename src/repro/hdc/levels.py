"""Level-hypervector construction (paper Sections 3.2 and 4.2.1).

Two schemes are provided:

* :func:`flip_levels` — the classic construction: ``l_0`` is a random
  bipolar vector and each subsequent ``l_j`` flips ``D/(2Q)`` *fresh*
  positions of ``l_{j-1}``, so similarity decreases monotonically with
  level distance and ``l_0``/``l_{Q-1}`` differ in about half their
  positions.

* :func:`chunked_levels` — the paper's hardware-friendly variant
  (Section 4.2.1): the ``D`` dimensions are split into ``C`` chunks with
  all bits inside a chunk identical, and levels flip whole chunks.  This
  is what turns the element-wise encoding MAC into an MVM: the array can
  be driven chunk-by-chunk instead of bit-by-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _random_bipolar(rng: np.random.Generator, size: int) -> np.ndarray:
    """Uniform random vector over {-1, +1} as int8."""
    return (rng.integers(0, 2, size=size, dtype=np.int8) * 2 - 1).astype(np.int8)


def flip_levels(
    dim: int, num_levels: int, rng: np.random.Generator
) -> np.ndarray:
    """Build a ``(num_levels, dim)`` int8 matrix of correlated levels.

    A single random permutation of the dimensions defines the flip
    schedule; level ``j`` flips the ``j``-th block of ``dim // (2 *
    num_levels)`` positions of level ``j-1``.  Using fresh positions per
    step makes level similarity an exact linear function of level
    distance (up to integer truncation of the block size).
    """
    if num_levels < 2:
        raise ValueError(f"num_levels must be >= 2, got {num_levels}")
    if dim < 2 * num_levels:
        raise ValueError(
            f"dim ({dim}) must be >= 2 * num_levels ({2 * num_levels}) so "
            "each level can flip at least one position"
        )
    block = dim // (2 * num_levels)
    schedule = rng.permutation(dim)
    levels = np.empty((num_levels, dim), dtype=np.int8)
    levels[0] = _random_bipolar(rng, dim)
    for j in range(1, num_levels):
        levels[j] = levels[j - 1]
        flip = schedule[(j - 1) * block : j * block]
        levels[j, flip] = -levels[j, flip]
    return levels


@dataclass(frozen=True)
class ChunkedLevels:
    """Chunk-structured level hypervectors.

    ``chunk_values`` has shape ``(num_levels, num_chunks)`` with entries
    in {-1, +1}; ``expanded`` is the materialised ``(num_levels, dim)``
    matrix obtained by repeating each chunk value over its chunk.  The
    in-memory encoder feeds ``chunk_values`` (one input element per
    chunk), which is the whole point of the scheme.
    """

    chunk_values: np.ndarray
    dim: int

    @property
    def num_levels(self) -> int:
        """Number of quantisation levels in the table."""
        return self.chunk_values.shape[0]

    @property
    def num_chunks(self) -> int:
        """Number of chunks each level vector is divided into."""
        return self.chunk_values.shape[1]

    @property
    def chunk_size(self) -> int:
        """Dimensions per chunk (the last chunk absorbs the remainder)."""
        return self.dim // self.num_chunks

    def chunk_slices(self) -> list:
        """Half-open dimension ranges of each chunk."""
        base = self.dim // self.num_chunks
        remainder = self.dim % self.num_chunks
        slices = []
        start = 0
        for c in range(self.num_chunks):
            width = base + (1 if c < remainder else 0)
            slices.append(slice(start, start + width))
            start += width
        return slices

    def expand(self) -> np.ndarray:
        """Materialise the full ``(num_levels, dim)`` int8 matrix."""
        expanded = np.empty((self.num_levels, self.dim), dtype=np.int8)
        for c, sl in enumerate(self.chunk_slices()):
            expanded[:, sl] = self.chunk_values[:, c : c + 1]
        return expanded


def chunked_levels(
    dim: int,
    num_levels: int,
    num_chunks: int,
    rng: np.random.Generator,
) -> ChunkedLevels:
    """Build chunk-structured levels (paper Section 4.2.1).

    Level ``j`` flips ``num_chunks // (2 * num_levels)`` (at least one)
    fresh chunks of level ``j-1``, mirroring :func:`flip_levels` at chunk
    granularity.  ``num_chunks`` must satisfy
    ``(num_levels - 1) * block <= num_chunks`` which always holds for the
    computed block size.
    """
    if num_levels < 2:
        raise ValueError(f"num_levels must be >= 2, got {num_levels}")
    if num_chunks < num_levels:
        raise ValueError(
            f"num_chunks ({num_chunks}) must be >= num_levels "
            f"({num_levels}) so each level can flip a fresh chunk"
        )
    if dim < num_chunks:
        raise ValueError(f"dim ({dim}) must be >= num_chunks ({num_chunks})")
    block = max(1, num_chunks // (2 * num_levels))
    # Never run past the end of the flip schedule.
    block = min(block, max(1, (num_chunks - 1) // (num_levels - 1)))
    schedule = rng.permutation(num_chunks)
    values = np.empty((num_levels, num_chunks), dtype=np.int8)
    values[0] = _random_bipolar(rng, num_chunks)
    for j in range(1, num_levels):
        values[j] = values[j - 1]
        flip = schedule[(j - 1) * block : j * block]
        values[j, flip] = -values[j, flip]
    return ChunkedLevels(chunk_values=values, dim=dim)


def level_similarity_profile(levels: np.ndarray) -> np.ndarray:
    """Normalised similarity of every level to level 0.

    Returns ``sim[j] = <l_0, l_j> / dim`` — handy for tests asserting the
    monotone-decreasing similarity structure both schemes guarantee.
    """
    reference = levels[0].astype(np.int32)
    return (levels.astype(np.int32) @ reference) / levels.shape[1]
