"""Open modification spectral library search in high-dimensional space.

HD-OMS-MLC: hyperdimensional open-modification search on (simulated)
multi-level-cell RRAM.  A full reproduction of Fan et al., "Efficient Open Modification Spectral
Library Searching in High-Dimensional Space with Multi-Level-Cell
Memory" (DAC 2024, arXiv:2405.02756).  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.

Subpackages
-----------
``repro.ms``
    Mass-spectrometry substrate: peptides, spectra, preprocessing,
    MGF/MSP IO, decoys, synthetic workloads.
``repro.hdc``
    Hyperdimensional computing core: ID/level hypervectors, the
    ID-Level encoder, Hamming similarity, packing, noise injection.
``repro.oms``
    The search engine: precursor-window candidates, HD search,
    target-decoy FDR, end-to-end pipeline.
``repro.index``
    Persistent encoded-library index (build once, ``.npz`` on disk,
    memory-mapped load) and the sharded multiprocessing searcher.
``repro.store``
    Out-of-core segmented library store: streaming ingest bounded by
    ``segment_rows``, append/merge compaction, manifest provenance,
    and the lazily-opening ``SegmentedSearcher``.
``repro.engine``
    ``EngineConfig`` — the single engine-construction config accepted
    by every searcher, the service layer, and the CLI flag group.
``repro.service``
    Long-lived online search service: dynamic micro-batching, LRU
    result caching, stdlib HTTP JSON API (``repro serve``), client.
``repro.baselines``
    ANN-SoLo-like, HyperOMS-like, and brute-force comparators.
``repro.rram``
    MLC RRAM simulator: device physics, differential crossbar MVM,
    dense hypervector storage, tiling, chip facade.
``repro.accelerator``
    This work's accelerator: in-memory encoding/search plus the
    performance & energy models.
``repro.experiments``
    One module per paper table/figure, regenerating its rows/series.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
