"""Wire protocol shared by the search server and its clients.

Three concerns live here because both sides of the HTTP boundary need
them:

* a JSON codec for :class:`~repro.ms.spectrum.Spectrum` payloads
  (``spectrum_to_payload`` / ``spectrum_from_payload``) with loud,
  field-level validation errors;
* a canonical **content digest** for spectra
  (:func:`spectrum_digest`) that ignores the identifier, so two
  requests carrying the same peaks/precursor hash to the same cache
  key no matter what the client called them;
* a **configuration fingerprint** (:func:`config_fingerprint`) mixing
  the index provenance with the search-stage knobs, so cached results
  can never leak across indexes, windows, modes, or backends;
* the **route** field of the multi-index protocol
  (:func:`route_from_payload`, :data:`ROUTE_PATTERN`): requests may
  name which loaded library they target, and both the server and the
  :class:`~repro.service.registry.IndexRegistry` validate route names
  against the same pattern.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
import struct
from typing import Optional

import numpy as np

from ..ms.peptide import Peptide
from ..ms.spectrum import Spectrum


class ProtocolError(ValueError):
    """A request payload does not describe a valid spectrum."""


#: Legal route names: metric-label safe, path-safe, no whitespace.
ROUTE_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Route name used when a single unnamed index is served.  Lives here
#: (not in registry.py) so server.py can share it without an import
#: cycle.
DEFAULT_ROUTE = "default"


def validate_route_name(route: str) -> str:
    """Return ``route`` if it is a legal route name, else raise."""
    if not isinstance(route, str) or not ROUTE_PATTERN.match(route):
        raise ProtocolError(
            f"bad route name {route!r}: expected 1-64 chars of "
            "[A-Za-z0-9._-] starting with a letter or digit"
        )
    return route


def route_from_payload(payload: object) -> Optional[str]:
    """Extract and validate the optional ``route`` field of a request.

    ``None`` (field absent or explicitly null) means "use the server's
    default route"; anything else must be a legal route name.
    """
    if not isinstance(payload, dict):
        return None
    route = payload.get("route")
    if route is None:
        return None
    return validate_route_name(route)


def spectrum_to_payload(spectrum: Spectrum) -> dict:
    """Encode a spectrum as a JSON-safe dict (the ``/search`` body)."""
    payload = {
        "id": spectrum.identifier,
        "precursor_mz": float(spectrum.precursor_mz),
        "precursor_charge": int(spectrum.precursor_charge),
        "mz": [float(value) for value in spectrum.mz],
        "intensity": [float(value) for value in spectrum.intensity],
    }
    if spectrum.peptide is not None:
        payload["peptide"] = spectrum.peptide.sequence
    if spectrum.retention_time is not None:
        payload["retention_time"] = float(spectrum.retention_time)
    return payload


def spectrum_from_payload(payload: object) -> Spectrum:
    """Decode one spectrum payload, raising :class:`ProtocolError`."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"spectrum payload must be an object, got {type(payload).__name__}"
        )
    for field in ("precursor_mz", "precursor_charge", "mz", "intensity"):
        if field not in payload:
            raise ProtocolError(f"spectrum payload is missing {field!r}")
    peptide: Optional[Peptide] = None
    if payload.get("peptide"):
        try:
            peptide = Peptide(str(payload["peptide"]))
        except ValueError as error:
            raise ProtocolError(f"bad peptide: {error}") from None
    try:
        return Spectrum(
            identifier=str(payload.get("id", "query")),
            precursor_mz=float(payload["precursor_mz"]),
            precursor_charge=int(payload["precursor_charge"]),
            mz=np.asarray(payload["mz"], dtype=np.float64),
            intensity=np.asarray(payload["intensity"], dtype=np.float32),
            peptide=peptide,
            retention_time=(
                float(payload["retention_time"])
                if payload.get("retention_time") is not None
                else None
            ),
        )
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad spectrum payload: {error}") from None


def spectrum_digest(spectrum: Spectrum) -> str:
    """Canonical content hash of one spectrum.

    Covers precursor m/z, charge, and the peak arrays — *not* the
    identifier — so renamed resubmissions of the same scan collide on
    purpose.  Peaks are already m/z-sorted by ``Spectrum.__post_init__``,
    making the byte stream canonical.
    """
    hasher = hashlib.sha256()
    hasher.update(
        struct.pack("<dq", float(spectrum.precursor_mz), int(spectrum.precursor_charge))
    )
    hasher.update(np.ascontiguousarray(spectrum.mz, dtype=np.float64).tobytes())
    hasher.update(
        np.ascontiguousarray(spectrum.intensity, dtype=np.float32).tobytes()
    )
    return hasher.hexdigest()


def config_fingerprint(index_provenance: dict, windows, search_config, backend: str) -> str:
    """Hash of everything that can change a search result.

    ``index_provenance`` is :meth:`LibraryIndex.provenance`; ``windows``
    and ``search_config`` are the dataclass configs.  Two services with
    equal fingerprints return bit-identical PSMs for the same spectrum,
    which is exactly the property the result cache needs.
    """
    blob = json.dumps(
        {
            "index": index_provenance,
            "windows": dataclasses.asdict(windows),
            "search": dataclasses.asdict(search_config),
            "backend": backend,
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
