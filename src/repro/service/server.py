"""Long-lived online search service over a persisted library index.

:class:`SearchService` is the engine room: it loads a
:class:`~repro.index.library.LibraryIndex` once, keeps a warm vectorized
searcher behind a :class:`~repro.service.scheduler.MicroBatchScheduler`
(single-spectrum requests coalesce into batch searches), and fronts
everything with a :class:`~repro.service.cache.ResultCache` keyed by
spectrum content digest + configuration fingerprint.  Every flushed
micro-batch reaches the engine as one ``search`` call, so the whole
batch is *encoded* through the fused vectorized
``SpectrumEncoder.encode_batch`` pipeline and *scored* as dense
matmuls — the micro-batching win compounds through both stages.  Results are
bit-identical to a direct :class:`~repro.oms.search.HDOmsSearcher` run
on the same index and configuration, whatever order or batch the
requests arrive in.

:class:`SearchServer` / :func:`serve` wrap an
:class:`~repro.service.registry.IndexRegistry` — one or many routes,
each a :class:`SearchService` with its own cache and scheduler — in a
stdlib ``ThreadingHTTPServer`` JSON API:

========================  ====  ==========================================
``/search``               POST  one spectrum -> one PSM (or null)
``/search_batch``         POST  many spectra -> aligned PSM list
``/healthz``              GET   liveness + per-route index summaries
``/stats``                GET   cache / scheduler / latency counters
``/metrics``              GET   Prometheus text exposition
``/reload``               POST  add / swap / remove one route or toggle
                                its ANN prefilter; others keep serving
                                undisturbed
========================  ====  ==========================================

``/search`` and ``/search_batch`` accept an optional ``route`` field
selecting which loaded library answers; an unknown route is a 404 and
an omitted one falls back to the registry's default route.

Shutdown is graceful: the HTTP loop stops accepting, each route's
scheduler drains queued requests as final batches, and the sharded
pools (when used) are closed with ``close()``/``join()`` rather than
terminated.
"""

from __future__ import annotations

import copy
import dataclasses
import json
import logging
import re
import signal
import threading
import time
import warnings
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..ann import AnnConfig
from ..constants import DEFAULT_OPEN_WINDOW_DA, DEFAULT_STANDARD_WINDOW_DA
from ..engine import EngineConfig
from ..index.library import LibraryIndex
from ..index.sharded import ShardedSearcher
from ..store import SegmentedSearcher, SegmentedStore, open_search_source
from ..ms.spectrum import Spectrum
from ..obs.export import chrome_trace
from ..obs.logging import ensure_default_logging
from ..obs.slowlog import DEFAULT_SLOW_MS, SlowQueryLog, stage_breakdown
from ..obs.trace import DEFAULT_CAPACITY, get_tracer, new_request_id
from ..oms.batch import BatchedHDOmsSearcher
from ..oms.candidates import WindowConfig
from ..oms.psm import PSM
from ..oms.search import HDSearchConfig
from .cache import MISSING, ResultCache
from .metrics import RouteMetrics, ServiceMetrics
from .protocol import (
    DEFAULT_ROUTE,
    ProtocolError,
    config_fingerprint,
    route_from_payload,
    spectrum_digest,
    spectrum_from_payload,
)
from .scheduler import MicroBatchScheduler

logger = logging.getLogger(__name__)

#: Client-supplied request ids must match this or be replaced (they end
#: up in log lines, trace exports, and response headers verbatim).
_REQUEST_ID_PATTERN = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


#: ServiceConfig engine fields the EngineConfig consolidation shims.
_LEGACY_ENGINE_FIELDS = (
    "engine",
    "num_shards",
    "num_workers",
    "backend",
    "executor",
    "score_block_rows",
)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one online search service instance.

    Engine construction is configured by ``engine_config`` (an
    :class:`~repro.engine.EngineConfig`); its ``kind="auto"`` picks the
    dense batched searcher (one matmul per charge bucket — the fastest
    schedule for coalesced micro-batches) whenever the configuration
    allows it, the segmented searcher for manifest-backed stores, and
    the sharded searcher otherwise — every engine choice over the same
    index rows returns bit-identical PSMs.  The individual engine
    fields (``engine``, ``num_shards``, ``num_workers``, ``backend``,
    ``executor``, ``score_block_rows``) remain as deprecated shims and
    may not be combined with ``engine_config``.

    ``ann`` (optional :class:`~repro.ann.AnnConfig`) turns on the
    Hamming-LSH candidate prefilter for this route's engine; results
    become approximate (see ``docs/ann-tuning.md``) and the cache
    fingerprint changes, so toggling it can never serve stale exact
    results for approximate requests or vice versa.
    """

    max_batch: int = 32
    max_wait_ms: float = 5.0
    cache_capacity: int = 1024
    engine: str = "auto"  # deprecated: use engine_config.kind
    num_shards: int = 1  # deprecated: use engine_config
    num_workers: Optional[int] = 0  # deprecated: use engine_config
    backend: str = "dense"  # deprecated: use engine_config
    mode: str = "open"
    open_window_da: float = DEFAULT_OPEN_WINDOW_DA
    standard_tolerance_da: float = DEFAULT_STANDARD_WINDOW_DA
    charge_aware: bool = True
    ann: Optional[AnnConfig] = None
    executor: str = "process"  # deprecated: use engine_config
    score_block_rows: Optional[int] = None  # deprecated: use engine_config
    engine_config: Optional[EngineConfig] = None

    def _legacy_overrides(self) -> Dict[str, object]:
        """The deprecated engine fields that differ from their defaults."""
        defaults = {
            "engine": "auto",
            "num_shards": 1,
            "num_workers": 0,
            "backend": "dense",
            "executor": "process",
            "score_block_rows": None,
        }
        return {
            name: getattr(self, name)
            for name in _LEGACY_ENGINE_FIELDS
            if getattr(self, name) != defaults[name]
        }

    def resolved_engine(self) -> EngineConfig:
        """The single :class:`~repro.engine.EngineConfig` this service runs.

        Either ``engine_config`` verbatim (with ``ann`` folded in when
        only the legacy field carries it) or one assembled from the
        deprecated per-field knobs.
        """
        if self.engine_config is not None:
            if self.engine_config.ann is None and self.ann is not None:
                return self.engine_config.replace(ann=self.ann)
            return self.engine_config
        return EngineConfig(
            kind=self.engine,
            backend=self.backend,
            num_shards=self.num_shards,
            num_workers=self.num_workers,
            executor=self.executor,
            score_block_rows=self.score_block_rows,
            ann=self.ann,
        )

    def resolved_ann(self) -> Optional[AnnConfig]:
        """The effective ANN prefilter config (whichever field holds it)."""
        return self.resolved_engine().ann

    def with_ann(self, ann: Optional[AnnConfig]) -> "ServiceConfig":
        """A copy with the ANN config swapped, wherever it lives."""
        if self.engine_config is not None:
            return dataclasses.replace(
                self, ann=None, engine_config=self.engine_config.replace(ann=ann)
            )
        return dataclasses.replace(self, ann=ann)

    def __post_init__(self) -> None:
        """Fail fast on any inconsistent knob combination."""
        legacy = self._legacy_overrides()
        if self.engine_config is not None and legacy:
            raise ValueError(
                "pass engine knobs via engine_config=EngineConfig(...) or "
                f"the legacy fields, not both: {sorted(legacy)}"
            )
        if legacy:
            warnings.warn(
                f"ServiceConfig engine fields ({', '.join(_LEGACY_ENGINE_FIELDS)}) "
                "are deprecated; pass engine_config=repro.engine.EngineConfig(...) "
                "instead",
                DeprecationWarning,
                stacklevel=3,
            )
        # EngineConfig validates the execution knobs (kind, backend,
        # worker counts, executor, tiling); re-raised here so a bad
        # config fails at construction, not on the first search.
        resolved = self.resolved_engine()
        if self.mode not in ("open", "standard", "cascade"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if resolved.kind == "batched" and self.mode == "cascade":
            raise ValueError("the batched engine does not support cascade mode")
        if resolved.kind == "batched" and resolved.backend_label != "dense":
            raise ValueError(
                f"the batched engine is dense-only; use engine='sharded' "
                f"for backend {resolved.backend_label!r}"
            )
        if resolved.kind == "batched" and resolved.num_shards != 1:
            raise ValueError(
                "the batched engine does not shard; use engine='sharded' "
                f"for num_shards={resolved.num_shards}"
            )
        if resolved.kind == "batched" and resolved.num_workers != 0:
            raise ValueError(
                "the batched engine runs in-process; use engine='sharded' "
                f"for num_workers={resolved.num_workers}"
            )

    def windows(self) -> WindowConfig:
        """The precursor-window config the engines search with."""
        return WindowConfig(
            standard_tolerance_da=self.standard_tolerance_da,
            open_window_da=self.open_window_da,
            charge_aware=self.charge_aware,
        )

    def search_config(self) -> HDSearchConfig:
        """The search-stage config (mode + ANN) the engines run with."""
        return HDSearchConfig(mode=self.mode, ann=self.resolved_ann())


#: How long a reload may wait for the in-flight batch before giving up
#: (the normal wait is one batch's search; only a wedged engine ever
#: approaches this).
ENGINE_SWAP_TIMEOUT = 60.0


class ServiceStartupError(RuntimeError):
    """The service could not start (bad config / unreadable index).

    Raised by :func:`serve` for failures *before* the server loop so the
    CLI can print a clean usage error, while genuine runtime crashes
    keep their tracebacks.
    """


class SearchService:
    """Warm index + micro-batching + result cache behind one object.

    Parameters
    ----------
    index:
        A loaded :class:`LibraryIndex` or a path to a persisted one.
        Passing a path enables argument-less :meth:`reload`.
    config:
        :class:`ServiceConfig`; defaults serve open-mode dense search
        with a 32-spectrum / 5 ms micro-batch window.
    metrics:
        Optional shared :class:`~repro.service.metrics.ServiceMetrics`.
        When several services sit behind one
        :class:`~repro.service.registry.IndexRegistry`, they all
        observe into the same families under their own ``route`` label;
        a standalone service creates a private one.
    route:
        The route label this service reports under (``"default"``).
    """

    def __init__(
        self,
        index: Union[LibraryIndex, SegmentedStore, str, Path],
        config: Optional[ServiceConfig] = None,
        metrics: Optional[ServiceMetrics] = None,
        route: str = DEFAULT_ROUTE,
    ) -> None:
        self.config = config or ServiceConfig()
        self.route = route
        self._owns_metrics = metrics is None
        self.metrics = metrics or ServiceMetrics()
        self._route_metrics: RouteMetrics = self.metrics.for_route(route)
        # Bridge finished tracer spans into the per-stage histogram;
        # idempotent, so routes sharing one ServiceMetrics attach once.
        self.metrics.attach(get_tracer())
        if isinstance(index, (str, Path)):
            # A directory (or manifest.json) opens as a SegmentedStore;
            # anything else loads as a monolithic .npz index.
            self.index_path: Optional[Path] = Path(index)
            self.index = open_search_source(self.index_path)
        else:
            self.index_path = None
            self.index = index
        self._engine_lock = threading.Lock()
        # Serialises cache writes against reload()'s cache clear so a
        # stale result can never be stored after the clear ran.
        self._swap_lock = threading.Lock()
        self._generation = 0
        # Remember the last concrete ANN config so set_ann(True) after a
        # set_ann(False) re-enables the same knobs, not the defaults.
        self._last_ann: Optional[AnnConfig] = self.config.resolved_ann()
        self._ann_generation = -1
        self._ann_last: Dict[str, int] = {}
        self._engine, self._engine_label, self._fingerprint = self._build_engine(
            self.index
        )
        self.cache = ResultCache(
            self.config.cache_capacity,
            observer=self._route_metrics.cache_event,
        )
        self.scheduler = MicroBatchScheduler(
            self._run_batch,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            flush_observer=self._route_metrics.flush_event,
            route=route,
        )
        self._stats_lock = threading.Lock()
        self._search_requests = 0
        self._batch_requests = 0
        self._reloads = 0
        self._latency_total = 0.0
        self._latency_count = 0
        self._started = time.time()
        self._closed = False

    # ------------------------------------------------------------------
    # engine construction / batch execution
    # ------------------------------------------------------------------

    def _engine_kind(
        self,
        config: Optional[ServiceConfig] = None,
        index: Union[LibraryIndex, SegmentedStore, None] = None,
    ) -> str:
        config = config or self.config
        index = index if index is not None else self.index
        resolved = config.resolved_engine()
        segmented = isinstance(index, SegmentedStore)
        if resolved.kind != "auto":
            if segmented and resolved.kind != "segmented":
                raise ValueError(
                    f"engine kind {resolved.kind!r} cannot serve a segmented "
                    "store; use 'auto' or 'segmented'"
                )
            if not segmented and resolved.kind == "segmented":
                raise ValueError(
                    "engine kind 'segmented' requires a manifest-backed "
                    "store, not a monolithic index"
                )
            return resolved.kind
        if segmented:
            return "segmented"
        if (
            config.mode in ("open", "standard")
            and resolved.num_shards == 1
            and resolved.backend_label == "dense"
            # Asking for workers (N > 0, or None = one per CPU) is an
            # explicit request for the process pool — honour it rather
            # than silently serving in-process.
            and resolved.num_workers == 0
        ):
            return "batched"
        return "sharded"

    def _build_engine(
        self,
        index: Union[LibraryIndex, SegmentedStore],
        config: Optional[ServiceConfig] = None,
    ):
        """Build the warm searcher + the cache fingerprint for it."""
        config = config or self.config
        windows = config.windows()
        search_config = config.search_config()
        engine_config = config.resolved_engine()
        kind = self._engine_kind(config, index)
        if kind == "batched":
            engine = BatchedHDOmsSearcher.from_index(
                index,
                windows=windows,
                mode=config.mode,
                engine=engine_config,
            )
            label = (
                "batched-dense+ann"
                if engine_config.ann is not None
                else "batched-dense"
            )
        elif kind == "segmented":
            engine = SegmentedSearcher(
                index,
                windows=windows,
                config=search_config,
                engine=engine_config.replace(kind="segmented"),
            )
            label = engine.backend_name
        else:
            engine = ShardedSearcher(
                index,
                windows=windows,
                config=search_config,
                engine=engine_config.replace(kind="sharded"),
            )
            label = engine.backend_name
        fingerprint = config_fingerprint(
            index.provenance(), windows, search_config, label
        )
        return engine, label, fingerprint

    def _run_batch(
        self, batch: List[Spectrum]
    ) -> List[Tuple[Optional[PSM], str, int]]:
        """Score one coalesced batch; called by the scheduler thread.

        Requests are renamed to unique positional identifiers before the
        batch search (client identifiers may collide across concurrent
        requests) and renamed back on the way out.  Each result carries
        the fingerprint and generation of the engine that produced it,
        so cache entries stay consistent across concurrent
        :meth:`reload` swaps.
        """
        renamed = []
        for position, spectrum in enumerate(batch):
            # Shallow copy, not dataclasses.replace: the peak arrays are
            # shared read-only and re-running __post_init__ validation
            # per request would be pure overhead on the hot path.
            clone = copy.copy(spectrum)
            clone.identifier = str(position)
            renamed.append(clone)
        with self._engine_lock:
            fingerprint = self._fingerprint
            generation = self._generation
            with get_tracer().span(
                "engine.search",
                route=self.route,
                batch=len(renamed),
                engine=self._engine_label,
            ):
                result = self._engine.search(renamed)
            # Cumulative engine counters, captured while no other batch
            # can run: successive snapshots of one generation are
            # monotone, so per-batch deltas are well defined.
            ann_stats = getattr(self._engine, "ann_stats", None)
            ann_snapshot = (
                ann_stats.snapshot() if ann_stats is not None else None
            )
        self._observe_ann(ann_snapshot, generation)
        by_position = {psm.query_id: psm for psm in result.psms}
        out: List[Tuple[Optional[PSM], str, int]] = []
        for position, spectrum in enumerate(batch):
            psm = by_position.get(str(position))
            if psm is not None:
                psm = dataclasses.replace(psm, query_id=spectrum.identifier)
            out.append((psm, fingerprint, generation))
        return out

    def _observe_ann(
        self, snapshot: Optional[Dict[str, int]], generation: int
    ) -> None:
        """Feed one batch's ANN counter delta into the route metrics.

        Engines report *cumulative* counters; Prometheus counters want
        increments.  The last-seen snapshot is keyed by engine
        generation so a reload / ANN toggle (fresh engine, counters back
        at zero) restarts the delta baseline instead of producing
        negative increments.
        """
        if snapshot is None:
            return
        with self._stats_lock:
            if generation != self._ann_generation:
                self._ann_generation = generation
                self._ann_last = {}
            delta = {
                key: value - self._ann_last.get(key, 0)
                for key, value in snapshot.items()
            }
            self._ann_last = dict(snapshot)
        self._route_metrics.observe_ann(delta)

    # ------------------------------------------------------------------
    # request API
    # ------------------------------------------------------------------

    def _lookup(self, spectrum: Spectrum) -> Tuple[str, object]:
        digest = spectrum_digest(spectrum)
        return digest, self.cache.get((self._fingerprint, digest))

    def _finish(
        self, digest: str, outcome: Tuple[Optional[PSM], str, int]
    ) -> Optional[PSM]:
        psm, fingerprint, generation = outcome
        # Only cache results computed by the *current* engine: a result
        # from a pre-reload engine arriving after reload() cleared the
        # cache would otherwise be servable forever, even though a
        # rebuilt index at the same path can carry the same fingerprint
        # (provenance describes configuration, not library content).
        # The check and the put must be atomic w.r.t. reload()'s clear,
        # hence the swap lock: without it the generation could pass the
        # check and the put still land after the clear.
        with self._swap_lock:
            if generation == self._generation:
                self.cache.put((fingerprint, digest), psm)
        return psm

    def _record_latency(self, started: float) -> None:
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self._latency_total += elapsed
            self._latency_count += 1
        self._route_metrics.observe_latency(elapsed)

    def search_one_detailed(
        self, spectrum: Spectrum, request_id: Optional[str] = None
    ) -> Tuple[Optional[PSM], bool]:
        """``(psm_or_none, served_from_cache)`` for one spectrum.

        ``request_id`` (ingress-generated by the HTTP handler, or any
        caller-chosen token) names this request's spans in the trace.
        """
        started = time.perf_counter()
        tracer = get_tracer()
        with self._stats_lock:
            self._search_requests += 1
        self._route_metrics.observe_request("search")
        with tracer.span(
            "service.search", request_id=request_id, route=self.route
        ) as root:
            with tracer.span("service.cache_lookup") as span:
                digest, cached = self._lookup(spectrum)
                span.tag(hit=cached is not MISSING)
            if cached is not MISSING:
                psm = cached
                if psm is not None:
                    psm = dataclasses.replace(
                        psm, query_id=spectrum.identifier
                    )
                root.tag(cached=True)
                self._record_latency(started)
                return psm, True
            with tracer.span("service.await_batch"):
                outcome = self.scheduler.submit(spectrum).result()
            psm = self._finish(digest, outcome)
            root.tag(cached=False)
        self._record_latency(started)
        return psm, False

    def search_one(self, spectrum: Spectrum) -> Optional[PSM]:
        """Search one spectrum (micro-batched + cached under the hood)."""
        return self.search_one_detailed(spectrum)[0]

    def search_many(
        self,
        spectra: Sequence[Spectrum],
        request_id: Optional[str] = None,
    ) -> List[Optional[PSM]]:
        """Search several spectra in one submission.

        The whole list enters the scheduler at once, so it typically
        runs as one vectorized batch.  ``request_id`` names the whole
        submission's spans in the trace.
        """
        started = time.perf_counter()
        tracer = get_tracer()
        with self._stats_lock:
            self._batch_requests += 1
        self._route_metrics.observe_request("search_batch")
        with tracer.span(
            "service.search_batch",
            request_id=request_id,
            route=self.route,
            spectra=len(spectra),
        ) as root:
            results: List[Optional[PSM]] = [None] * len(spectra)
            # Coalesce duplicate spectra within the request: one search
            # per unique digest, fanned back out to every position.
            misses: Dict[str, List[int]] = {}
            with tracer.span("service.cache_lookup") as span:
                for position, spectrum in enumerate(spectra):
                    digest, cached = self._lookup(spectrum)
                    if cached is not MISSING:
                        if cached is not None:
                            results[position] = dataclasses.replace(
                                cached, query_id=spectrum.identifier
                            )
                        continue
                    misses.setdefault(digest, []).append(position)
                span.tag(misses=len(misses), spectra=len(spectra))
            root.tag(misses=len(misses))
            with tracer.span("service.await_batch"):
                futures = self.scheduler.submit_many(
                    [spectra[positions[0]] for positions in misses.values()]
                )
                outcomes = [future.result() for future in futures]
            for (digest, positions), outcome in zip(misses.items(), outcomes):
                psm = self._finish(digest, outcome)
                for position in positions:
                    results[position] = (
                        dataclasses.replace(
                            psm, query_id=spectra[position].identifier
                        )
                        if psm is not None
                        else None
                    )
        self._record_latency(started)
        return results

    def reload(self, index_path: Union[str, Path, None] = None) -> str:
        """Hot-swap the index; queued requests are never dropped.

        The replacement index is built off to the side while the old
        engine keeps serving; the swap itself waits only for the batch
        currently in flight.  The cache is cleared, and the generation
        bump keeps results that were computed on the old engine — but
        arrive at their requester after the clear — from being cached
        (a rebuilt index at the same path can share a fingerprint, so
        clearing alone would not be enough).  The old engine is closed
        gracefully.
        """
        if self._closed:
            # Building a replacement engine for a closed service would
            # leak it (nothing will ever serve from or close it).
            raise RuntimeError("service is closed")
        path = Path(index_path) if index_path is not None else self.index_path
        if path is None:
            raise ValueError(
                "service was built from an in-memory index; "
                "pass index_path to reload"
            )
        new_index = open_search_source(path)
        new_engine, new_label, new_fingerprint = self._build_engine(new_index)
        # Bounded engine-lock acquire: the swap normally waits only for
        # the batch in flight, but a *wedged* batch holds the lock
        # forever — an unbounded wait here would park the /reload
        # handler thread and hang server_close() at shutdown.
        if not self._engine_lock.acquire(timeout=ENGINE_SWAP_TIMEOUT):
            if hasattr(new_engine, "close"):
                new_engine.close()
            raise RuntimeError(
                "reload timed out waiting for the in-flight batch "
                f"({ENGINE_SWAP_TIMEOUT}s); is the engine wedged?"
            )
        try:
            # The cache clear must be atomic with the swap: a rebuilt
            # index can share the old fingerprint (provenance-equal),
            # and clearing in a later critical section would leave a
            # window where new requests hit pre-reload entries.  The
            # closed re-check also lives under the swap lock — the same
            # lock close() reads the engine under — so either this swap
            # completes first (close() then closes the engine installed
            # here) or close() won and the swap aborts; the engine can
            # never be installed unseen into a closed service.
            with self._swap_lock:
                if self._closed:
                    aborted_engine = new_engine
                else:
                    aborted_engine = None
                    old_engine = self._engine
                    old_index = self.index
                    self._engine = new_engine
                    self._engine_label = new_label
                    self._fingerprint = new_fingerprint
                    self._generation += 1
                    self.index = new_index
                    self.index_path = path
                    self.cache.clear()
        finally:
            self._engine_lock.release()
        if aborted_engine is not None:
            if hasattr(aborted_engine, "close"):
                aborted_engine.close()
            raise RuntimeError("service is closed")
        with self._stats_lock:
            self._reloads += 1
        self._route_metrics.observe_reload()
        if hasattr(old_engine, "close"):
            old_engine.close()
        if isinstance(old_index, SegmentedStore) and old_index is not new_index:
            old_index.close()
        logger.info(
            "route %s reloaded from %s (%d references, engine=%s)",
            self.route,
            path,
            new_index.num_references,
            new_label,
        )
        return new_index.summary()

    def set_ann(
        self, enabled: bool, ann: Optional[AnnConfig] = None
    ) -> str:
        """Toggle the ANN prefilter on the live engine; returns its label.

        Re-enabling without an explicit ``ann`` restores the last
        concrete :class:`~repro.ann.AnnConfig` this route ran with (the
        startup config, or whatever a previous ``set_ann`` installed),
        falling back to the defaults if there never was one.  The swap
        follows :meth:`reload` exactly — built off to the side, queued
        requests never dropped, cache cleared under the generation bump
        — because the cache fingerprint changes with the ANN setting.

        Args:
            enabled: Whether the rebuilt engine should prefilter.
            ann: Optional explicit config when enabling.

        Returns:
            The new engine label (e.g. ``"batched-dense+ann"``).

        Raises:
            RuntimeError: If the service is closed or the in-flight
                batch does not finish within ``ENGINE_SWAP_TIMEOUT``.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        target = (ann or self._last_ann or AnnConfig()) if enabled else None
        new_config = self.config.with_ann(target)
        if new_config == self.config:
            return self._engine_label
        index = self.index
        new_engine, new_label, new_fingerprint = self._build_engine(
            index, config=new_config
        )
        if not self._engine_lock.acquire(timeout=ENGINE_SWAP_TIMEOUT):
            if hasattr(new_engine, "close"):
                new_engine.close()
            raise RuntimeError(
                "ANN toggle timed out waiting for the in-flight batch "
                f"({ENGINE_SWAP_TIMEOUT}s); is the engine wedged?"
            )
        try:
            with self._swap_lock:
                if self._closed:
                    aborted_engine = new_engine
                else:
                    aborted_engine = None
                    old_engine = self._engine
                    self._engine = new_engine
                    self._engine_label = new_label
                    self._fingerprint = new_fingerprint
                    self._generation += 1
                    self.config = new_config
                    if target is not None:
                        self._last_ann = target
                    self.cache.clear()
        finally:
            self._engine_lock.release()
        if aborted_engine is not None:
            if hasattr(aborted_engine, "close"):
                aborted_engine.close()
            raise RuntimeError("service is closed")
        with self._stats_lock:
            self._reloads += 1
        self._route_metrics.observe_reload()
        if hasattr(old_engine, "close"):
            old_engine.close()
        logger.info(
            "route %s ANN prefilter %s (engine=%s)",
            self.route,
            "enabled" if enabled else "disabled",
            new_label,
        )
        return new_label

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------

    @property
    def engine_name(self) -> str:
        """Human-readable label of the engine currently serving requests."""
        return self._engine_label

    def healthz(self) -> Dict[str, object]:
        """Liveness payload: index summary, engine label, ANN flag."""
        return {
            "status": "ok",
            "route": self.route,
            "index": self.index.summary(),
            "num_references": self.index.num_references,
            "engine": self.engine_name,
            "ann": self.config.resolved_ann() is not None,
            "uptime_seconds": round(time.time() - self._started, 3),
        }

    def _ann_section(self) -> Dict[str, object]:
        """The ANN block of :meth:`stats` (present even when disabled)."""
        with self._swap_lock:
            engine = self._engine
        ann_stats = getattr(engine, "ann_stats", None)
        if ann_stats is None:
            return {"enabled": False}
        section: Dict[str, object] = {"enabled": True}
        snapshot = ann_stats.snapshot()
        section.update(snapshot)
        window_rows = snapshot["window_rows"]
        section["candidate_ratio"] = (
            round(snapshot["scored_rows"] / window_rows, 6)
            if window_rows
            else None
        )
        return section

    def stats(self) -> Dict[str, object]:
        """Counters for ``/stats``: requests, latency, cache, engine."""
        with self._stats_lock:
            requests = {
                "search": self._search_requests,
                "search_batch": self._batch_requests,
                "reloads": self._reloads,
            }
            latency = {
                "count": self._latency_count,
                "total_ms": round(1000.0 * self._latency_total, 3),
                "mean_ms": round(
                    1000.0 * self._latency_total / self._latency_count, 3
                )
                if self._latency_count
                else None,
            }
        return {
            "route": self.route,
            "requests": requests,
            "latency": latency,
            "cache": self.cache.stats(),
            "scheduler": self.scheduler.snapshot(),
            "engine": {
                "name": self.engine_name,
                "mode": self.config.mode,
                "num_references": self.index.num_references,
                "max_batch": self.config.max_batch,
                "max_wait_ms": self.config.max_wait_ms,
                "executor": getattr(self._engine, "executor_kind", "inline"),
                "arena_bytes": int(getattr(self._engine, "arena_nbytes", 0)),
                "config": self.config.resolved_engine().to_dict(),
                "ann": self._ann_section(),
            },
            "uptime_seconds": round(time.time() - self._started, 3),
        }

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain the scheduler, then close the engine (idempotent).

        The order matters: the scheduler drains *first* so queued
        requests are answered by a live engine, and only then is the
        engine's worker pool closed.  ``timeout`` bounds the drain — a
        wedged engine fails the still-pending futures instead of
        hanging this call (see
        :meth:`MicroBatchScheduler.close <repro.service.scheduler.MicroBatchScheduler.close>`).
        """
        self._closed = True
        # Every step below is idempotent, so close() runs in full on
        # every call: a concurrent second caller also waits for the
        # drain (it must not tear down shared state under a live
        # flusher), and a re-close after a racing reload() swapped in a
        # fresh engine closes *that* engine instead of leaking it.  The
        # engine read takes the *swap* lock (brief pointer swaps only —
        # never held during a search, so a wedged batch cannot block
        # this): a racing reload() either finishes its swap first (we
        # then close the engine it installed) or re-checks _closed
        # under the same lock and aborts, so the engine read here
        # cannot be displaced afterwards.
        self.scheduler.close(drain=True, timeout=timeout)
        with self._swap_lock:
            engine = self._engine
        if hasattr(engine, "close"):
            engine.close()
        if self.index_path is not None and isinstance(self.index, SegmentedStore):
            # The service opened this store itself (path source), so it
            # owns the mmap'd segment cache; caller-provided stores are
            # the caller's to close.
            self.index.close()
        if self._owns_metrics:
            # Shared (registry-owned) metrics stay attached: sibling
            # routes are still exporting stage histograms through them.
            self.metrics.detach(get_tracer())

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class SearchServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the route registry for its handlers.

    Accepts either a bare :class:`SearchService` (wrapped into a
    single-route :class:`~repro.service.registry.IndexRegistry`) or a
    pre-built registry serving several libraries.

    Handler threads are non-daemon so ``server_close()`` joins them:
    responses for already-accepted requests are fully written before
    shutdown proceeds (daemon threads would be killed at interpreter
    exit mid-write).  Two mechanisms bound how long keep-alive clients
    can delay that join: the handler's idle read timeout (silent
    connections), and the ``draining`` flag set by :meth:`shutdown`,
    which makes every subsequent response close its connection (active
    pollers would otherwise keep a persistent connection served
    forever).
    """

    daemon_threads = False
    allow_reuse_address = True
    #: Once True, handlers answer the current request then close the
    #: connection, so server_close() can join their threads.
    draining = False

    def __init__(
        self,
        address,
        service,
        quiet: bool = True,
        slow_ms: float = DEFAULT_SLOW_MS,
    ):
        from .registry import IndexRegistry

        super().__init__(address, SearchRequestHandler)
        if isinstance(service, SearchService):
            self.registry = IndexRegistry.from_service(service)
            self._implicit_registry = True
        else:
            self.registry = service
            self._implicit_registry = False
        self.quiet = quiet
        #: Ring buffer behind ``/debug/slow``; requests slower than
        #: ``slow_ms`` are recorded with their per-stage breakdown.
        self.slowlog = SlowQueryLog(threshold_ms=slow_ms)

    @property
    def service(self) -> SearchService:
        """The default route's service (single-route back-compat)."""
        return self.registry.get()

    def shutdown(self) -> None:
        """Stop accepting requests and drain keep-alive connections."""
        self.draining = True
        super().shutdown()

    def server_close(self) -> None:
        """Close the socket, then drain routes this server itself added."""
        super().server_close()
        if self._implicit_registry:
            # The caller owns only the service it passed in; routes
            # hot-added over /reload exist solely inside the registry
            # this server created, so they are drained and closed here
            # — otherwise their flusher threads and worker pools leak.
            self.registry.close_added_routes(timeout=30.0)


class _BodyTooLarge(ProtocolError):
    """Request body exceeds the server's acceptance limit."""


class SearchRequestHandler(BaseHTTPRequestHandler):
    """Routes the JSON API onto a :class:`SearchService`."""

    server_version = "hdoms-service"
    protocol_version = "HTTP/1.1"
    # Socket read timeout: closes idle keep-alive connections so
    # server_close() cannot block on a silent client.
    timeout = 10.0
    # Upper bound on request bodies: a long-lived service must not
    # buffer an arbitrarily large POST into memory.  Generous for any
    # real /search_batch (a spectrum payload is a few KiB).
    max_body_bytes = 64 * 1024 * 1024

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Per-request stderr logging, silenced unless ``quiet=False``."""
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        request_id: Optional[str] = None,
    ) -> None:
        if status >= 400 or getattr(self.server, "draining", False):
            # Error paths may leave an unread request body on the
            # socket (e.g. a POST to an unknown path); keeping the
            # HTTP/1.1 connection alive would desync the next request,
            # so close it.  A draining server closes every connection
            # after its in-flight response so shutdown can join the
            # handler threads.
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: dict,
        request_id: Optional[str] = None,
    ) -> None:
        self._send_body(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            request_id=request_id,
        )

    def _request_id(self) -> str:
        """The request's trace id: client-supplied when sane, else fresh.

        A client may pin its own ``X-Request-Id`` (to correlate with
        its logs); anything not matching the safe token pattern is
        replaced, since the id is echoed into headers and log lines.
        """
        supplied = self.headers.get("X-Request-Id")
        if supplied and _REQUEST_ID_PATTERN.match(supplied):
            return supplied
        return new_request_id()

    def _observe_slow(
        self,
        started: float,
        request_id: str,
        route: str,
        endpoint: str,
        **extra: object,
    ) -> None:
        """Offer one finished request to the server's slow-query log."""
        slowlog = getattr(self.server, "slowlog", None)
        if slowlog is None:
            return
        elapsed_ms = 1000.0 * (time.perf_counter() - started)
        stages = None
        tracer = get_tracer()
        if tracer.enabled and elapsed_ms >= slowlog.threshold_ms:
            stages = stage_breakdown(tracer.spans_for(request_id))
        slowlog.observe(
            elapsed_ms,
            request_id=request_id,
            route=route,
            endpoint=endpoint,
            stages=stages,
            **extra,
        )

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_body(status, text.encode("utf-8"), content_type)

    def _content_length(self) -> int:
        raw = self.headers.get("Content-Length") or "0"
        try:
            return int(raw)
        except ValueError:
            raise ProtocolError(
                f"bad Content-Length header: {raw!r}"
            ) from None

    def _read_json(self) -> object:
        length = self._content_length()
        if length <= 0:
            raise ProtocolError("request body required")
        if length > self.max_body_bytes:
            raise _BodyTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes} byte limit"
            )
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"bad JSON body: {error}") from None

    @property
    def registry(self):
        """The index registry owned by the server."""
        return self.server.registry

    @property
    def service(self) -> SearchService:
        """Default-route service (single-route back-compat)."""
        return self.server.service

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Read-only endpoints: /healthz, /stats, /metrics, /debug/*."""
        try:
            parsed = urlsplit(self.path)
            if parsed.path == "/healthz":
                if getattr(self.server, "draining", False):
                    # A draining server still answers in-flight work but
                    # must fail its readiness probe immediately, so load
                    # balancers and the coordinator's routing table stop
                    # sending new traffic before the socket goes away.
                    self._send_json(
                        503, {"status": "draining", "draining": True}
                    )
                else:
                    payload = self.registry.healthz()
                    payload["draining"] = False
                    self._send_json(200, payload)
            elif parsed.path == "/stats":
                self._send_json(200, self.registry.stats())
            elif parsed.path == "/metrics":
                self._send_text(
                    200,
                    self.registry.render_metrics(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif parsed.path == "/debug/slow":
                slowlog = getattr(self.server, "slowlog", None)
                if slowlog is None:
                    self._send_json(404, {"error": "slow-query log not enabled"})
                else:
                    self._send_json(200, slowlog.snapshot())
            elif parsed.path == "/debug/trace":
                params = parse_qs(parsed.query)
                request_id = params.get("request_id", [None])[0]
                self._send_json(
                    200, chrome_trace(get_tracer(), request_id=request_id)
                )
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except Exception as error:  # noqa: BLE001 - boundary
            self._send_json(500, {"error": str(error)})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Serve the mutating endpoints: /search, /search_batch, /reload."""
        from .registry import UnknownRouteError

        try:
            if self.path == "/search":
                self._handle_search()
            elif self.path == "/search_batch":
                self._handle_search_batch()
            elif self.path == "/reload":
                self._handle_reload()
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except _BodyTooLarge as error:
            self._send_json(413, {"error": str(error)})
        except UnknownRouteError as error:
            self._send_json(404, {"error": str(error)})
        except ProtocolError as error:
            self._send_json(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - boundary
            self._send_json(500, {"error": str(error)})

    def _handle_search(self) -> None:
        payload = self._read_json()
        route = None
        if isinstance(payload, dict) and "spectrum" in payload:
            route = route_from_payload(payload)
            payload = payload["spectrum"]
        elif isinstance(payload, dict) and "route" in payload:
            # The legacy bare-spectrum form has no route slot; silently
            # answering from the default route would be exactly the
            # wrong-library leak the routing layer exists to prevent.
            raise ProtocolError(
                'a routed search must use the wrapped form '
                '{"spectrum": {...}, "route": "<name>"}'
            )
        service = self.registry.get(route)
        spectrum = spectrum_from_payload(payload)
        request_id = self._request_id()
        started = time.perf_counter()
        psm, cached = service.search_one_detailed(
            spectrum, request_id=request_id
        )
        response = {
            "psm": psm.to_dict() if psm is not None else None,
            "cached": cached,
            "route": service.route,
            "request_id": request_id,
            "elapsed_ms": round(
                1000.0 * (time.perf_counter() - started), 3
            ),
        }
        with get_tracer().span(
            "service.serialize", request_id=request_id, route=service.route
        ):
            self._send_json(200, response, request_id=request_id)
        self._observe_slow(
            started, request_id, service.route, "search", cached=cached
        )

    def _handle_search_batch(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict) or "spectra" not in payload:
            raise ProtocolError('body must be {"spectra": [...]}')
        spectra_payload = payload["spectra"]
        if not isinstance(spectra_payload, list):
            raise ProtocolError('"spectra" must be a list')
        service = self.registry.get(route_from_payload(payload))
        spectra = [spectrum_from_payload(entry) for entry in spectra_payload]
        request_id = self._request_id()
        started = time.perf_counter()
        psms = service.search_many(spectra, request_id=request_id)
        response = {
            "psms": [
                psm.to_dict() if psm is not None else None for psm in psms
            ],
            "route": service.route,
            "request_id": request_id,
            "elapsed_ms": round(
                1000.0 * (time.perf_counter() - started), 3
            ),
        }
        with get_tracer().span(
            "service.serialize", request_id=request_id, route=service.route
        ):
            self._send_json(200, response, request_id=request_id)
        self._observe_slow(
            started,
            request_id,
            service.route,
            "search_batch",
            spectra=len(spectra),
        )

    def _handle_reload(self) -> None:
        payload: object = {}
        if self._content_length() > 0:
            payload = self._read_json()
        if not isinstance(payload, dict):
            # Don't silently reload the old path for a wrong-shaped
            # body the client meant as a new index.
            raise ProtocolError(
                'body must be {} or {"index": "<path>", "route": "<name>", '
                '"remove": bool, "ann": bool}'
            )
        index_path = payload.get("index")
        if index_path is not None and not isinstance(index_path, str):
            raise ProtocolError('"index" must be a string path')
        route = route_from_payload(payload)
        remove = payload.get("remove", False)
        if not isinstance(remove, bool):
            raise ProtocolError('"remove" must be a boolean')
        ann_flag = payload.get("ann")
        if ann_flag is not None and not isinstance(ann_flag, bool):
            raise ProtocolError('"ann" must be a boolean')
        if ann_flag is not None:
            # An ANN toggle rebuilds the engine over the index already
            # loaded on the route; mixing it with an index swap or a
            # route removal would be ambiguous about ordering.
            if index_path is not None or remove:
                raise ProtocolError(
                    '"ann" is mutually exclusive with "index" and "remove"'
                )
            service = self.registry.get(route)
            try:
                label = service.set_ann(ann_flag)
            except RuntimeError as error:
                raise ProtocolError(str(error)) from None
            self._send_json(
                200,
                {
                    "status": "ok",
                    "route": service.route,
                    "ann": ann_flag,
                    "engine": label,
                    "routes": self.registry.route_names(),
                },
            )
            return
        if remove:
            if index_path is not None:
                raise ProtocolError(
                    '"remove" and "index" are mutually exclusive'
                )
            if route is None:
                raise ProtocolError('"remove" requires a "route"')
            try:
                self.registry.remove_route(route)
            except ValueError as error:
                raise ProtocolError(str(error)) from None
            self._send_json(
                200,
                {
                    "status": "ok",
                    "removed": route,
                    "routes": self.registry.route_names(),
                },
            )
            return
        try:
            service = self.registry.reload_route(route, index_path)
        except (ValueError, OSError) as error:
            raise ProtocolError(str(error)) from None
        self._send_json(
            200,
            {
                "status": "ok",
                "route": service.route,
                "index": service.index.summary(),
                "num_references": service.index.num_references,
                "routes": self.registry.route_names(),
            },
        )


def start_server(
    service,
    host: str = "127.0.0.1",
    port: int = 0,
    slow_ms: float = DEFAULT_SLOW_MS,
) -> SearchServer:
    """Bind a :class:`SearchServer` (port 0 = ephemeral); caller serves.

    ``service`` may be a single :class:`SearchService` or an
    :class:`~repro.service.registry.IndexRegistry` fronting several.
    ``slow_ms`` is the ``/debug/slow`` recording threshold.
    """
    return SearchServer((host, port), service, slow_ms=slow_ms)


def serve(
    index_path,
    host: str = "127.0.0.1",
    port: int = 8337,
    config: Optional[ServiceConfig] = None,
    quiet: bool = False,
    default_route: Optional[str] = None,
    drain_timeout: float = 30.0,
    slow_ms: float = DEFAULT_SLOW_MS,
    trace: bool = True,
    trace_capacity: int = DEFAULT_CAPACITY,
) -> int:
    """Run the service until SIGINT/SIGTERM; drains before exiting.

    This is the ``repro serve`` entry point.  ``index_path`` accepts a
    single path (served as the ``"default"`` route) or a
    ``{route: path}`` mapping / sequence of pairs for multi-index
    routing.  Shutdown order matters: stop accepting connections first,
    then drain each route's micro-batch queue (queued requests still
    get real answers), then close the sharded pools gracefully.
    ``drain_timeout`` bounds the whole shutdown against a wedged
    engine: if joining the in-flight handlers takes longer, their
    pending futures are failed (clients get errors, not silence) so
    the process still exits.

    ``trace`` enables the process tracer for the server's lifetime
    (restored on exit), sizing its ring buffer to ``trace_capacity``
    spans; ``slow_ms`` is the ``/debug/slow`` recording threshold.
    """
    from .registry import IndexRegistry

    ensure_default_logging()
    tracer = get_tracer()
    tracer_was_enabled = tracer.enabled
    if trace:
        tracer.enable(trace_capacity)
    try:
        registry = IndexRegistry(
            index_path, default_route=default_route, config=config
        )
        server = start_server(registry, host, port, slow_ms=slow_ms)
    except (ValueError, OSError) as error:
        if trace and not tracer_was_enabled:
            tracer.disable()
        raise ServiceStartupError(str(error)) from error
    server.quiet = quiet

    def _shutdown(signum, frame) -> None:
        # shutdown() must not run on the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    installed = []
    for signame in ("SIGINT", "SIGTERM"):
        signum = getattr(signal, signame, None)
        if signum is None:
            continue
        try:
            installed.append((signum, signal.signal(signum, _shutdown)))
        except ValueError:  # not the main thread
            pass
    bound_host, bound_port = server.server_address[:2]
    for name in registry.route_names():
        marker = " (default)" if name == registry.default_route else ""
        logger.info(
            "route %s%s: %s", name, marker, registry.get(name).index.summary()
        )
    service_config = registry.get().config
    # The "listening on http://host:port" phrasing is load-bearing:
    # supervisors (and the fault-injection tests) parse the bound port
    # out of this exact line.
    logger.info(
        "listening on http://%s:%s (max_batch=%s, max_wait_ms=%s, "
        "slow_ms=%s, trace=%s)",
        bound_host,
        bound_port,
        service_config.max_batch,
        service_config.max_wait_ms,
        slow_ms,
        trace,
    )
    try:
        server.serve_forever()
    finally:
        # server_close() joins the non-daemon handler threads, which
        # block in future.result() until their batches drain — the
        # graceful path.  A wedged engine would park them forever, so a
        # watchdog force-closes the registry (failing the pending
        # futures, which unblocks the handlers) if the join outlives
        # drain_timeout.
        watchdog = threading.Timer(
            drain_timeout, registry.close, kwargs={"timeout": 5.0}
        )
        watchdog.daemon = True
        watchdog.start()
        try:
            server.server_close()
        finally:
            watchdog.cancel()
            registry.close(timeout=drain_timeout)
        for signum, previous in installed:
            signal.signal(signum, previous)
        if trace and not tracer_was_enabled:
            tracer.disable()
        logger.info("service drained and closed")
    return 0
