"""Lock-safe Prometheus-style metrics for the search service.

The service's ``/stats`` endpoint returns a JSON snapshot built from
per-subsystem counters; that is fine for humans but useless for a
scraper, which needs monotonic counters and bucketed histograms in the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_.  This
module provides the three pieces the service needs and nothing more:

* :class:`Counter` and :class:`Histogram` — labelled metric families,
  each guarded by its own lock (they are leaf locks: no metric ever
  calls back into service code, so they cannot participate in a lock
  cycle);
* :class:`MetricsRegistry` — owns the families and renders the full
  ``/metrics`` payload;
* :class:`ServiceMetrics` / :class:`RouteMetrics` — the concrete
  instrumentation schema of the search service (per-route request
  counters, cache hit/miss, micro-batch size and wait histograms,
  request latency histograms), with :meth:`ServiceMetrics.for_route`
  handing each route a pre-bound view so hot-path call sites never
  build label dicts.

Everything here is stdlib-only and dependency-free on purpose: the
service must export metrics without requiring ``prometheus_client``.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs.trace import Span, Tracer

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Tracer span names bridged into the per-stage latency histogram,
#: mapped to their ``stage`` label.  Spans must carry a ``route`` to be
#: exported (pipeline spans inherit it from the service root span).
STAGE_SPANS: Dict[str, str] = {
    "service.cache_lookup": "cache_lookup",
    "scheduler.queue_wait": "queue_wait",
    "scheduler.batch": "batch",
    "engine.search": "engine",
    "encode.batch": "encode",
    "ann.prefilter": "ann_prefilter",
    "score.dense": "score_dense",
    "score.rerank": "score_rerank",
    "score.window": "score_window",
    "shard.fanout": "shard_fanout",
    "shard.score": "shard_score",
    "service.serialize": "serialize",
}

#: Default latency-style buckets (seconds), Prometheus' classic ladder.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Buckets for micro-batch sizes (spectra per flush).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Buckets for the ANN candidate ratio (scored rows / window rows) —
#: 0.01 means the prefilter cut 99% of the exact-scoring work.
RATIO_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    parts = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + parts + "}"


class _Metric:
    """Shared plumbing of one labelled metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_PATTERN.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _header(self) -> List[str]:
        return [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> List[str]:  # pragma: no cover - overridden
        """Render the exposition lines (implemented by subclasses)."""
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing labelled counter."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (>= 0) to the labelled child."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of the labelled child."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        """Render the counter in Prometheus text format."""
        with self._lock:
            items = sorted(self._values.items())
        lines = self._header()
        for key, value in items:
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return lines


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe`` is O(number of buckets) under a plain lock — cheap
    enough for a per-request hot path with a dozen buckets.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        buckets = tuple(float(b) for b in buckets)
        if not buckets:
            raise ValueError("histogram needs at least one bucket")
        if list(buckets) != sorted(set(buckets)):
            raise ValueError(f"buckets must be strictly increasing: {buckets}")
        if any(math.isinf(b) for b in buckets):
            raise ValueError("+Inf bucket is implicit; do not pass it")
        self.buckets = buckets
        # Per labelset: [per-bucket counts..., overflow count], sum.
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labelled histogram."""
        key = self._key(labels)
        value = float(value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            slot = len(self.buckets)
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    slot = position
                    break
            counts[slot] += 1
            self._sums[key] += value

    def snapshot(self, **labels: str) -> Dict[str, float]:
        """``{count, sum}`` for one labelset (absent -> zeros)."""
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                return {"count": 0, "sum": 0.0}
            return {"count": sum(counts), "sum": self._sums[key]}

    def render(self) -> List[str]:
        """Render the histogram in Prometheus text format."""
        with self._lock:
            items = sorted(
                (key, list(counts), self._sums[key])
                for key, counts in self._counts.items()
            )
        lines = self._header()
        bucket_labelnames = self.labelnames + ("le",)
        for key, counts, total in items:
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                labels = _render_labels(
                    bucket_labelnames, key + (_format_bound(bound),)
                )
                lines.append(
                    f"{self.name}_bucket{labels} {_format_value(cumulative)}"
                )
            cumulative += counts[-1]
            labels = _render_labels(bucket_labelnames, key + ("+Inf",))
            lines.append(
                f"{self.name}_bucket{labels} {_format_value(cumulative)}"
            )
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {repr(float(total))}")
            lines.append(
                f"{self.name}_count{plain} {_format_value(cumulative)}"
            )
        return lines


def _format_bound(bound: float) -> str:
    """``le`` label value: trim integral bounds to Prometheus style."""
    if float(bound).is_integer():
        return f"{bound:.1f}"
    return repr(float(bound))


class MetricsRegistry:
    """Ordered collection of metric families behind one ``render()``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: List[_Metric] = []

    def register(self, metric: _Metric) -> _Metric:
        """Register ``metric`` and return it."""
        with self._lock:
            if any(m.name == metric.name for m in self._metrics):
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics.append(metric)
        return metric

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Create, register, and return a labelled counter."""
        return self.register(Counter(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        """Create, register, and return a labelled histogram."""
        return self.register(Histogram(name, help, labelnames, buckets))

    def __iter__(self) -> Iterable[_Metric]:
        with self._lock:
            return iter(list(self._metrics))

    def render(self) -> str:
        """The full Prometheus text payload (trailing newline included)."""
        with self._lock:
            metrics = list(self._metrics)
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


class ServiceMetrics:
    """The search service's metric schema, shared across routes.

    One instance backs one ``/metrics`` endpoint; every route of an
    :class:`~repro.service.registry.IndexRegistry` observes into the
    same families with its own ``route`` label, so adding or removing a
    route never re-registers anything.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry or MetricsRegistry()
        self.requests = self.registry.counter(
            "hdoms_service_requests_total",
            "Search requests received, by route and endpoint.",
            ("route", "endpoint"),
        )
        self.cache_lookups = self.registry.counter(
            "hdoms_service_cache_lookups_total",
            "Result-cache lookups, by route and outcome (hit/miss).",
            ("route", "outcome"),
        )
        self.cache_evictions = self.registry.counter(
            "hdoms_service_cache_evictions_total",
            "Result-cache LRU evictions, by route.",
            ("route",),
        )
        self.reloads = self.registry.counter(
            "hdoms_service_reloads_total",
            "Index hot-swaps, by route.",
            ("route",),
        )
        self.batch_flushes = self.registry.counter(
            "hdoms_service_batch_flushes_total",
            "Micro-batch flushes, by route and reason (full/timeout/drain).",
            ("route", "reason"),
        )
        self.batch_size = self.registry.histogram(
            "hdoms_service_batch_size_spectra",
            "Spectra per flushed micro-batch, by route.",
            ("route",),
            buckets=BATCH_SIZE_BUCKETS,
        )
        self.batch_wait = self.registry.histogram(
            "hdoms_service_batch_wait_seconds",
            "Mean queue wait of a flushed micro-batch, by route.",
            ("route",),
        )
        self.latency = self.registry.histogram(
            "hdoms_service_request_latency_seconds",
            "End-to-end request latency (cache hits included), by route.",
            ("route",),
        )
        self.ann_queries = self.registry.counter(
            "hdoms_service_ann_queries_total",
            "ANN prefilter decisions, by route and outcome "
            "(bypass/prefiltered/fallback).",
            ("route", "outcome"),
        )
        self.ann_window_rows = self.registry.counter(
            "hdoms_service_ann_window_rows_total",
            "Precursor-window rows a brute-force search would have "
            "scored, by route.",
            ("route",),
        )
        self.ann_scored_rows = self.registry.counter(
            "hdoms_service_ann_scored_rows_total",
            "Rows actually scored after the ANN prefilter, by route.",
            ("route",),
        )
        self.ann_candidate_ratio = self.registry.histogram(
            "hdoms_service_ann_candidate_ratio",
            "Per-batch scored/window row ratio after the ANN prefilter, "
            "by route (1.0 = no pruning).",
            ("route",),
            buckets=RATIO_BUCKETS,
        )
        self.stage_seconds = self.registry.histogram(
            "hdoms_service_stage_seconds",
            "Per-stage pipeline latency from tracer spans, by route and "
            "stage (see repro.obs).",
            ("route", "stage"),
        )
        # Bound methods are fresh objects per attribute access; keep one
        # stable reference so attach/detach stay idempotent even when
        # several routes share this instance.
        self._listener = self.span_listener

    def for_route(self, route: str) -> "RouteMetrics":
        """A pre-bound per-route view (see :class:`RouteMetrics`)."""
        return RouteMetrics(self, route)

    def span_listener(self, span: Span) -> None:
        """Finished-span hook feeding :data:`STAGE_SPANS` histograms.

        Spans without a route (CLI runs, bare engine usage) and spans
        outside the stage mapping are skipped — the listener only
        exports pipeline stages the service can attribute to a route.
        """
        stage = STAGE_SPANS.get(span.name)
        if stage is None or span.route is None:
            return
        self.stage_seconds.observe(span.duration, route=span.route, stage=stage)

    def attach(self, tracer: Tracer) -> None:
        """Bridge ``tracer``'s finished spans into the stage histogram."""
        tracer.add_listener(self._listener)

    def detach(self, tracer: Tracer) -> None:
        """Remove the bridge installed by :meth:`attach`."""
        tracer.remove_listener(self._listener)

    def render(self) -> str:
        """The full Prometheus text payload for ``/metrics``."""
        return self.registry.render()


class RouteMetrics:
    """One route's pre-bound view onto :class:`ServiceMetrics`.

    The methods line up with the service's observation points (see the
    hooks in ``server.py``, ``cache.py``, ``scheduler.py``), so hot
    paths call e.g. ``metrics.observe_request("search")`` without
    touching label plumbing.
    """

    def __init__(self, parent: ServiceMetrics, route: str) -> None:
        self.parent = parent
        self.route = route

    def observe_request(self, endpoint: str) -> None:
        """Count one request to ``endpoint``."""
        self.parent.requests.inc(route=self.route, endpoint=endpoint)

    def observe_latency(self, seconds: float) -> None:
        """Record one end-to-end request latency."""
        self.parent.latency.observe(seconds, route=self.route)

    def observe_reload(self) -> None:
        """Count one successful engine reload."""
        self.parent.reloads.inc(route=self.route)

    def cache_event(self, event: str) -> None:
        """`ResultCache` observer hook: hit / miss / eviction."""
        if event == "eviction":
            self.parent.cache_evictions.inc(route=self.route)
        else:
            self.parent.cache_lookups.inc(route=self.route, outcome=event)

    def flush_event(self, size: int, reason: str, wait_seconds: float) -> None:
        """`MicroBatchScheduler` flush observer hook."""
        self.parent.batch_flushes.inc(route=self.route, reason=reason)
        self.parent.batch_size.observe(size, route=self.route)
        self.parent.batch_wait.observe(
            wait_seconds / size if size else 0.0, route=self.route
        )

    def observe_ann(self, delta: Dict[str, int]) -> None:
        """Record one batch's ANN counter increments.

        ``delta`` uses the :meth:`~repro.ann.AnnStats.snapshot` keys
        (``bypassed`` / ``prefiltered`` / ``fallbacks`` / ``window_rows``
        / ``scored_rows``); the candidate-ratio histogram gets one
        sample per batch that touched at least one window row.
        """
        outcomes = (
            ("bypassed", "bypass"),
            ("prefiltered", "prefiltered"),
            ("fallbacks", "fallback"),
        )
        for key, outcome in outcomes:
            count = delta.get(key, 0)
            if count > 0:
                self.parent.ann_queries.inc(
                    count, route=self.route, outcome=outcome
                )
        window_rows = delta.get("window_rows", 0)
        scored_rows = delta.get("scored_rows", 0)
        if window_rows > 0:
            self.parent.ann_window_rows.inc(window_rows, route=self.route)
            self.parent.ann_candidate_ratio.observe(
                scored_rows / window_rows, route=self.route
            )
        if scored_rows > 0:
            self.parent.ann_scored_rows.inc(scored_rows, route=self.route)
