"""Thread-safe LRU cache for per-spectrum search results.

Keys are ``(config fingerprint, spectrum digest)`` strings produced by
:mod:`repro.service.protocol`; values are the *search outcome* for that
spectrum — an anonymous PSM or ``None`` for an unmatched query.  A
cached miss is as valuable as a cached hit (the service would otherwise
re-run the full windowed scoring just to find nothing again), so the
cache must distinguish "stored None" from "absent": :meth:`get` returns
the :data:`MISSING` sentinel for absent keys.

Statistics (hits / misses / evictions / hit rate) are tracked under the
same lock and surface through the service's ``/stats`` endpoint.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional

#: Sentinel distinguishing "key absent" from a cached ``None`` result.
MISSING = object()


class ResultCache:
    """Bounded LRU mapping of result keys to cached search outcomes.

    ``capacity=0`` disables storage entirely (every lookup misses, puts
    are dropped) while keeping the stats counters alive, so a service
    can run cache-less without branching at every call site.

    ``observer``, when given, is called with ``"hit"`` / ``"miss"`` /
    ``"eviction"`` once per event, *outside* the cache lock (so an
    observer taking its own lock — the metrics counters do — cannot
    create a lock-ordering cycle with callers of the cache).
    """

    def __init__(
        self,
        capacity: int = 1024,
        observer: Optional[Callable[[str], None]] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.observer = observer
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def _notify(self, event: str, count: int = 1) -> None:
        if self.observer is not None:
            for _ in range(count):
                self.observer(event)

    def get(self, key: Hashable) -> object:
        """The cached value, or :data:`MISSING`; refreshes LRU order."""
        with self._lock:
            if key not in self._entries:
                self._misses += 1
                value = MISSING
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                value = self._entries[key]
        self._notify("miss" if value is MISSING else "hit")
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Store ``value`` (may be ``None``), evicting the LRU entry."""
        if self.capacity == 0:
            return
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        self._notify("eviction", evicted)

    def clear(self) -> None:
        """Drop every entry (stats counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Optional[float]]:
        """Counters for the ``/stats`` endpoint."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (self._hits / lookups) if lookups else None,
            }
