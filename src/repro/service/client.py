"""Thin stdlib HTTP client for the search service.

:class:`SearchClient` speaks the JSON protocol of
:mod:`repro.service.server` using nothing but ``urllib``, and converts
wire payloads back into first-class :class:`~repro.oms.psm.PSM`
objects, so callers interact with the remote service exactly like with
a local :class:`~repro.oms.search.HDOmsSearcher`::

    client = SearchClient("http://127.0.0.1:8337")
    psm = client.search(spectrum)           # Optional[PSM]
    psms = client.search_batch(spectra)     # aligned List[Optional[PSM]]

Against a multi-index server, requests can target one of the loaded
libraries per call or bind a default for the whole client::

    yeast = SearchClient("http://127.0.0.1:8337", route="yeast")
    psm = yeast.search(spectrum)                  # always the yeast route
    psm = client.search(spectrum, route="human")  # per-call override
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..ms.spectrum import Spectrum
from ..oms.psm import PSM
from .protocol import spectrum_to_payload


class ServiceError(RuntimeError):
    """An HTTP request to the search service failed.

    ``status`` is the HTTP status code, or ``None`` when the service
    could not be reached at all.
    """

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class SearchClient:
    """Blocking JSON client for one search service endpoint.

    ``route`` (optional) names the library every request of this client
    targets; ``None`` lets the server pick its default route.  Each
    search method also takes a per-call ``route`` override.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        route: Optional[str] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.route = route

    def for_route(self, route: Optional[str]) -> "SearchClient":
        """A sibling client bound to ``route`` (same URL and timeout)."""
        return SearchClient(self.base_url, timeout=self.timeout, route=route)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        parse_json: bool = True,
        headers: Optional[dict] = None,
    ):
        body = None
        headers = {"Accept": "application/json", **(headers or {})}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                text = response.read().decode("utf-8")
                return json.loads(text) if parse_json else text
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error body
                pass
            raise ServiceError(
                f"{method} {path} failed with HTTP {error.code}"
                + (f": {detail}" if detail else ""),
                status=error.code,
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach {self.base_url}: {error.reason}"
            ) from None

    def _resolve_route(self, route: Optional[str]) -> Optional[str]:
        return route if route is not None else self.route

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def search(
        self,
        spectrum: Spectrum,
        route: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> Optional[PSM]:
        """Search one spectrum; None when the service found no match."""
        payload = self.search_detailed(
            spectrum, route=route, request_id=request_id
        ).get("psm")
        return PSM.from_dict(payload) if payload is not None else None

    def search_detailed(
        self,
        spectrum: Spectrum,
        route: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> dict:
        """The raw ``/search`` reply (psm, cached flag, request id, timing).

        ``request_id`` pins the ``X-Request-Id`` the server would
        otherwise generate, correlating this call with the caller's own
        logs and with ``/debug/trace?request_id=...``.
        """
        body = {"spectrum": spectrum_to_payload(spectrum)}
        resolved = self._resolve_route(route)
        if resolved is not None:
            body["route"] = resolved
        headers = {"X-Request-Id": request_id} if request_id else None
        return self._request("POST", "/search", body, headers=headers)

    def search_batch(
        self,
        spectra: Sequence[Spectrum],
        route: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> List[Optional[PSM]]:
        """Search many spectra in one round trip; result aligns to input."""
        body = {"spectra": [spectrum_to_payload(s) for s in spectra]}
        resolved = self._resolve_route(route)
        if resolved is not None:
            body["route"] = resolved
        headers = {"X-Request-Id": request_id} if request_id else None
        reply = self._request("POST", "/search_batch", body, headers=headers)
        return [
            PSM.from_dict(payload) if payload is not None else None
            for payload in reply["psms"]
        ]

    def healthz(self) -> dict:
        """Liveness probe payload (includes the per-route breakdown)."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """Cache / scheduler / latency counters, overall and per route."""
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """The raw Prometheus text payload of ``/metrics``."""
        return self._request("GET", "/metrics", parse_json=False)

    def debug_slow(self) -> dict:
        """The server's slow-query ring buffer (``/debug/slow``)."""
        return self._request("GET", "/debug/slow")

    def debug_trace(self, request_id: Optional[str] = None) -> dict:
        """Chrome ``trace_event`` JSON from ``/debug/trace``.

        With ``request_id``, only that request's spans are exported.
        """
        path = "/debug/trace"
        if request_id is not None:
            path += f"?request_id={request_id}"
        return self._request("GET", path)

    def reload(
        self,
        index_path: Union[str, Path, None] = None,
        route: Optional[str] = None,
        remove: bool = False,
        ann: Optional[bool] = None,
    ) -> dict:
        """Hot-swap, add, remove, or re-tune one route without draining others.

        * no arguments — reload the client's (or server's default)
          route in place from its original path;
        * ``index_path`` — swap that route's index from a new file, or
          **add** a brand-new route when ``route`` names one the server
          does not serve yet;
        * ``remove=True`` — detach ``route`` and close it gracefully;
        * ``ann=True`` / ``ann=False`` — toggle the route's Hamming-LSH
          candidate prefilter on its already-loaded index (mutually
          exclusive with the other forms).
        """
        if remove and index_path is not None:
            # Mirror the server's 400 instead of silently dropping the
            # path and removing the route anyway.
            raise ValueError("remove=True and index_path are mutually exclusive")
        if ann is not None and (remove or index_path is not None):
            raise ValueError(
                "ann is mutually exclusive with index_path and remove"
            )
        payload: dict = {}
        resolved = self._resolve_route(route)
        if resolved is not None:
            payload["route"] = resolved
        if ann is not None:
            payload["ann"] = ann
        elif remove:
            payload["remove"] = True
        elif index_path is not None:
            payload["index"] = str(index_path)
        return self._request("POST", "/reload", payload)
