"""Thin stdlib HTTP client for the search service.

:class:`SearchClient` speaks the JSON protocol of
:mod:`repro.service.server` using nothing but ``urllib``, and converts
wire payloads back into first-class :class:`~repro.oms.psm.PSM`
objects, so callers interact with the remote service exactly like with
a local :class:`~repro.oms.search.HDOmsSearcher`::

    client = SearchClient("http://127.0.0.1:8337")
    psm = client.search(spectrum)           # Optional[PSM]
    psms = client.search_batch(spectra)     # aligned List[Optional[PSM]]
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..ms.spectrum import Spectrum
from ..oms.psm import PSM
from .protocol import spectrum_to_payload


class ServiceError(RuntimeError):
    """An HTTP request to the search service failed.

    ``status`` is the HTTP status code, or ``None`` when the service
    could not be reached at all.
    """

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class SearchClient:
    """Blocking JSON client for one search service endpoint."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _request(self, method: str, path: str, payload: Optional[dict] = None):
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error body
                pass
            raise ServiceError(
                f"{method} {path} failed with HTTP {error.code}"
                + (f": {detail}" if detail else ""),
                status=error.code,
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach {self.base_url}: {error.reason}"
            ) from None

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def search(self, spectrum: Spectrum) -> Optional[PSM]:
        """Search one spectrum; None when the service found no match."""
        payload = self.search_detailed(spectrum).get("psm")
        return PSM.from_dict(payload) if payload is not None else None

    def search_detailed(self, spectrum: Spectrum) -> dict:
        """The raw ``/search`` reply (psm payload, cached flag, timing)."""
        return self._request(
            "POST", "/search", {"spectrum": spectrum_to_payload(spectrum)}
        )

    def search_batch(self, spectra: Sequence[Spectrum]) -> List[Optional[PSM]]:
        """Search many spectra in one round trip; result aligns to input."""
        reply = self._request(
            "POST",
            "/search_batch",
            {"spectra": [spectrum_to_payload(s) for s in spectra]},
        )
        return [
            PSM.from_dict(payload) if payload is not None else None
            for payload in reply["psms"]
        ]

    def healthz(self) -> dict:
        """Liveness probe payload."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """Cache / scheduler / latency counters."""
        return self._request("GET", "/stats")

    def reload(self, index_path: Union[str, Path, None] = None) -> dict:
        """Hot-swap the service's index (optionally from a new path)."""
        payload = {"index": str(index_path)} if index_path is not None else {}
        return self._request("POST", "/reload", payload)
