"""Thin stdlib HTTP client for the search service.

:class:`SearchClient` speaks the JSON protocol of
:mod:`repro.service.server` using nothing but ``http.client``, and
converts wire payloads back into first-class
:class:`~repro.oms.psm.PSM` objects, so callers interact with the
remote service exactly like with a local
:class:`~repro.oms.search.HDOmsSearcher`::

    client = SearchClient("http://127.0.0.1:8337")
    psm = client.search(spectrum)           # Optional[PSM]
    psms = client.search_batch(spectra)     # aligned List[Optional[PSM]]

Against a multi-index server, requests can target one of the loaded
libraries per call or bind a default for the whole client::

    yeast = SearchClient("http://127.0.0.1:8337", route="yeast")
    psm = yeast.search(spectrum)                  # always the yeast route
    psm = client.search(spectrum, route="human")  # per-call override

The server speaks HTTP/1.1 keep-alive, so the client pools one
persistent connection per calling thread instead of paying a TCP
handshake per request.  A pooled socket can go stale between calls
(the server's idle timeout, a restart, a drain); the first send on a
stale socket fails before the server ever sees the request, so the
client transparently retries exactly once on a fresh connection.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import urllib.parse
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..ms.spectrum import Spectrum
from ..oms.psm import PSM
from .protocol import spectrum_to_payload


class ServiceError(RuntimeError):
    """An HTTP request to the search service failed.

    ``status`` is the HTTP status code, or ``None`` when the service
    could not be reached at all.
    """

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class SearchClient:
    """Blocking JSON client for one search service endpoint.

    ``route`` (optional) names the library every request of this client
    targets; ``None`` lets the server pick its default route.  Each
    search method also takes a per-call ``route`` override.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        route: Optional[str] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.route = route
        parts = urllib.parse.urlsplit(self.base_url)
        if parts.scheme not in ("http", "https") or not parts.hostname:
            raise ValueError(f"unsupported service URL {base_url!r}")
        self._scheme = parts.scheme
        self._host = parts.hostname
        self._port = parts.port or (443 if parts.scheme == "https" else 80)
        # One pooled keep-alive connection per calling thread
        # (http.client connections are not thread-safe); every
        # connection ever opened is also tracked under a lock so
        # close() can shut them all down from any thread.
        self._local = threading.local()
        self._pool_lock = threading.Lock()
        self._connections: List[http.client.HTTPConnection] = []

    def for_route(self, route: Optional[str]) -> "SearchClient":
        """A sibling client bound to ``route`` (same URL and timeout)."""
        return SearchClient(self.base_url, timeout=self.timeout, route=route)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            factory = (
                http.client.HTTPSConnection
                if self._scheme == "https"
                else http.client.HTTPConnection
            )
            connection = factory(self._host, self._port, timeout=self.timeout)
            self._local.connection = connection
            with self._pool_lock:
                self._connections.append(connection)
        return connection

    def _discard(self, connection: http.client.HTTPConnection) -> None:
        """Drop a (possibly stale) pooled connection."""
        try:
            connection.close()
        except Exception:  # noqa: BLE001 - best-effort socket teardown
            pass
        if getattr(self._local, "connection", None) is connection:
            self._local.connection = None
        with self._pool_lock:
            if connection in self._connections:
                self._connections.remove(connection)

    def close(self) -> None:
        """Close every pooled connection (the client stays usable)."""
        with self._pool_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.close()
            except Exception:  # noqa: BLE001 - best-effort socket teardown
                pass
        self._local.connection = None

    def __enter__(self) -> "SearchClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        parse_json: bool = True,
        headers: Optional[dict] = None,
    ):
        body = None
        headers = {"Accept": "application/json", **(headers or {})}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # A stale keep-alive socket fails on the *first* reused request
        # after the server closed its end; the request never reached a
        # handler, so exactly one transparent retry on a fresh
        # connection is safe for every method.
        for attempt in (0, 1):
            connection = self._connection()
            fresh = connection.sock is None
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                data = response.read()
            except (
                http.client.RemoteDisconnected,
                http.client.BadStatusLine,
                ConnectionResetError,
                BrokenPipeError,
            ) as error:
                self._discard(connection)
                if attempt == 0 and not fresh:
                    continue
                raise ServiceError(
                    f"cannot reach {self.base_url}: {error}"
                ) from None
            except (socket.timeout, TimeoutError) as error:
                self._discard(connection)
                raise ServiceError(
                    f"{method} {path} timed out after {self.timeout}s: {error}"
                ) from None
            except (http.client.HTTPException, OSError) as error:
                self._discard(connection)
                raise ServiceError(
                    f"cannot reach {self.base_url}: {error}"
                ) from None
            if response.will_close:
                # The server asked to close (error path or drain);
                # honour it so the next request opens a fresh socket.
                self._discard(connection)
            if response.status >= 400:
                detail = ""
                try:
                    detail = json.loads(data.decode("utf-8")).get("error", "")
                except Exception:  # noqa: BLE001 - best-effort error body
                    pass
                raise ServiceError(
                    f"{method} {path} failed with HTTP {response.status}"
                    + (f": {detail}" if detail else ""),
                    status=response.status,
                )
            text = data.decode("utf-8")
            return json.loads(text) if parse_json else text
        raise AssertionError("unreachable")  # pragma: no cover

    def _resolve_route(self, route: Optional[str]) -> Optional[str]:
        return route if route is not None else self.route

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def search(
        self,
        spectrum: Spectrum,
        route: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> Optional[PSM]:
        """Search one spectrum; None when the service found no match."""
        payload = self.search_detailed(
            spectrum, route=route, request_id=request_id
        ).get("psm")
        return PSM.from_dict(payload) if payload is not None else None

    def search_detailed(
        self,
        spectrum: Spectrum,
        route: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> dict:
        """The raw ``/search`` reply (psm, cached flag, request id, timing).

        ``request_id`` pins the ``X-Request-Id`` the server would
        otherwise generate, correlating this call with the caller's own
        logs and with ``/debug/trace?request_id=...``.
        """
        body = {"spectrum": spectrum_to_payload(spectrum)}
        resolved = self._resolve_route(route)
        if resolved is not None:
            body["route"] = resolved
        headers = {"X-Request-Id": request_id} if request_id else None
        return self._request("POST", "/search", body, headers=headers)

    def search_batch(
        self,
        spectra: Sequence[Spectrum],
        route: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> List[Optional[PSM]]:
        """Search many spectra in one round trip; result aligns to input."""
        body = {"spectra": [spectrum_to_payload(s) for s in spectra]}
        resolved = self._resolve_route(route)
        if resolved is not None:
            body["route"] = resolved
        headers = {"X-Request-Id": request_id} if request_id else None
        reply = self._request("POST", "/search_batch", body, headers=headers)
        return [
            PSM.from_dict(payload) if payload is not None else None
            for payload in reply["psms"]
        ]

    def healthz(self) -> dict:
        """Liveness probe payload (includes the per-route breakdown)."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """Cache / scheduler / latency counters, overall and per route."""
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """The raw Prometheus text payload of ``/metrics``."""
        return self._request("GET", "/metrics", parse_json=False)

    def debug_slow(self) -> dict:
        """The server's slow-query ring buffer (``/debug/slow``)."""
        return self._request("GET", "/debug/slow")

    def debug_trace(self, request_id: Optional[str] = None) -> dict:
        """Chrome ``trace_event`` JSON from ``/debug/trace``.

        With ``request_id``, only that request's spans are exported.
        """
        path = "/debug/trace"
        if request_id is not None:
            path += f"?request_id={request_id}"
        return self._request("GET", path)

    def reload(
        self,
        index_path: Union[str, Path, None] = None,
        route: Optional[str] = None,
        remove: bool = False,
        ann: Optional[bool] = None,
    ) -> dict:
        """Hot-swap, add, remove, or re-tune one route without draining others.

        * no arguments — reload the client's (or server's default)
          route in place from its original path;
        * ``index_path`` — swap that route's index from a new file, or
          **add** a brand-new route when ``route`` names one the server
          does not serve yet;
        * ``remove=True`` — detach ``route`` and close it gracefully;
        * ``ann=True`` / ``ann=False`` — toggle the route's Hamming-LSH
          candidate prefilter on its already-loaded index (mutually
          exclusive with the other forms).
        """
        if remove and index_path is not None:
            # Mirror the server's 400 instead of silently dropping the
            # path and removing the route anyway.
            raise ValueError("remove=True and index_path are mutually exclusive")
        if ann is not None and (remove or index_path is not None):
            raise ValueError(
                "ann is mutually exclusive with index_path and remove"
            )
        payload: dict = {}
        resolved = self._resolve_route(route)
        if resolved is not None:
            payload["route"] = resolved
        if ann is not None:
            payload["ann"] = ann
        elif remove:
            payload["remove"] = True
        elif index_path is not None:
            payload["index"] = str(index_path)
        return self._request("POST", "/reload", payload)
