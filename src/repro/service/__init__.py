"""Online open-modification search service (the ``repro serve`` stack).

The build-once/search-many workflow of :mod:`repro.index` stops one
step short of the ROADMAP's production target: every CLI invocation
still pays process start-up, index load, and worker warm-up.  This
subpackage keeps all of that hot in a long-lived process and serves
concurrent clients over a stdlib HTTP JSON API:

* :class:`~repro.service.scheduler.MicroBatchScheduler` — dynamic
  micro-batching; single-spectrum requests coalesce into vectorized
  batch searches (flush on ``max_batch`` or ``max_wait_ms``);
* :class:`~repro.service.cache.ResultCache` — LRU result cache keyed
  by spectrum content digest + configuration fingerprint;
* :class:`~repro.service.server.SearchService` /
  :class:`~repro.service.server.SearchServer` — the engine room and
  its ``ThreadingHTTPServer`` front (``/search``, ``/search_batch``,
  ``/healthz``, ``/stats``, ``/reload``);
* :class:`~repro.service.client.SearchClient` — a thin ``urllib``
  client returning first-class :class:`~repro.oms.psm.PSM` objects.

Responses are bit-identical to a direct
:class:`~repro.oms.search.HDOmsSearcher` run on the same index and
configuration, independent of request order, concurrency, or batch
composition.
"""

from .cache import MISSING, ResultCache
from .client import SearchClient, ServiceError
from .protocol import (
    ProtocolError,
    config_fingerprint,
    spectrum_digest,
    spectrum_from_payload,
    spectrum_to_payload,
)
from .scheduler import MicroBatchScheduler, SchedulerStats
from .server import (
    SearchRequestHandler,
    SearchServer,
    SearchService,
    ServiceConfig,
    ServiceStartupError,
    serve,
    start_server,
)

__all__ = [
    "MISSING",
    "ResultCache",
    "SearchClient",
    "ServiceError",
    "ProtocolError",
    "config_fingerprint",
    "spectrum_digest",
    "spectrum_from_payload",
    "spectrum_to_payload",
    "MicroBatchScheduler",
    "SchedulerStats",
    "SearchRequestHandler",
    "SearchServer",
    "SearchService",
    "ServiceConfig",
    "ServiceStartupError",
    "serve",
    "start_server",
]
