"""Online open-modification search service (the ``repro serve`` stack).

The build-once/search-many workflow of :mod:`repro.index` stops one
step short of the ROADMAP's production target: every CLI invocation
still pays process start-up, index load, and worker warm-up.  This
subpackage keeps all of that hot in a long-lived process and serves
concurrent clients over a stdlib HTTP JSON API:

* :class:`~repro.service.scheduler.MicroBatchScheduler` — dynamic
  micro-batching; single-spectrum requests coalesce into vectorized
  batch searches (flush on ``max_batch`` or ``max_wait_ms``);
* :class:`~repro.service.cache.ResultCache` — LRU result cache keyed
  by spectrum content digest + configuration fingerprint;
* :class:`~repro.service.registry.IndexRegistry` — multi-index
  routing: several loaded libraries behind one server, each route with
  its own cache and scheduler, hot add/swap/remove per route;
* :class:`~repro.service.metrics.ServiceMetrics` — lock-safe
  Prometheus text export (per-route request counters, cache hit/miss,
  micro-batch, latency, and :mod:`repro.obs` per-stage histograms)
  behind ``/metrics``, with ``/debug/trace`` (Chrome ``trace_event``
  JSON) and ``/debug/slow`` (slow-query ring buffer) alongside;
* :class:`~repro.service.server.SearchService` /
  :class:`~repro.service.server.SearchServer` — the engine room and
  its ``ThreadingHTTPServer`` front (``/search``, ``/search_batch``,
  ``/healthz``, ``/stats``, ``/metrics``, ``/reload``);
* :class:`~repro.service.client.SearchClient` — a thin ``urllib``
  client returning first-class :class:`~repro.oms.psm.PSM` objects,
  with per-client or per-call route selection.

Responses are bit-identical to a direct
:class:`~repro.oms.search.HDOmsSearcher` run on the same index and
configuration, independent of request order, concurrency, or batch
composition.
"""

from .cache import MISSING, ResultCache
from .client import SearchClient, ServiceError
from .metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    RouteMetrics,
    STAGE_SPANS,
    ServiceMetrics,
)
from .protocol import (
    ProtocolError,
    ROUTE_PATTERN,
    config_fingerprint,
    route_from_payload,
    spectrum_digest,
    spectrum_from_payload,
    spectrum_to_payload,
    validate_route_name,
)
from .registry import DEFAULT_ROUTE, IndexRegistry, UnknownRouteError
from .scheduler import MicroBatchScheduler, SchedulerStats
from .server import (
    SearchRequestHandler,
    SearchServer,
    SearchService,
    ServiceConfig,
    ServiceStartupError,
    serve,
    start_server,
)

__all__ = [
    "MISSING",
    "ResultCache",
    "SearchClient",
    "ServiceError",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "RouteMetrics",
    "STAGE_SPANS",
    "ServiceMetrics",
    "ProtocolError",
    "ROUTE_PATTERN",
    "config_fingerprint",
    "route_from_payload",
    "spectrum_digest",
    "spectrum_from_payload",
    "spectrum_to_payload",
    "validate_route_name",
    "DEFAULT_ROUTE",
    "IndexRegistry",
    "UnknownRouteError",
    "MicroBatchScheduler",
    "SchedulerStats",
    "SearchRequestHandler",
    "SearchServer",
    "SearchService",
    "ServiceConfig",
    "ServiceStartupError",
    "serve",
    "start_server",
]
