"""Multi-index routing: one server process, several spectral libraries.

A production deployment rarely fronts a single library: per-organism and
per-instrument libraries coexist, and the expensive part of each — the
loaded :class:`~repro.index.library.LibraryIndex` plus its warm engine —
must stay resident side by side.  :class:`IndexRegistry` owns one
:class:`~repro.service.server.SearchService` per **route name**, which
means every route gets its *own*
:class:`~repro.service.cache.ResultCache` and
:class:`~repro.service.scheduler.MicroBatchScheduler`: a hot route can
neither evict another route's cached results nor stall another route's
micro-batches.

Routing rules:

* requests name a route explicitly (the ``route`` field of the wire
  protocol) or fall back to the registry's **default route**;
* an unknown route raises :class:`UnknownRouteError`, which the HTTP
  layer maps to a 404;
* :meth:`reload_route` swaps (or adds) exactly one route: the new
  index is built off to the side and only that route's engine swap
  waits for its in-flight batch — every other route keeps serving
  undisturbed;
* :meth:`remove_route` detaches a route and closes it gracefully
  (draining its queued requests); the default route cannot be removed.

All routes share one
:class:`~repro.service.metrics.ServiceMetrics`, so the ``/metrics``
endpoint exports per-route counters and histograms from a single
registry no matter how routes come and go.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..index.library import LibraryIndex
from ..obs.trace import get_tracer
from ..store import SegmentedStore
from .metrics import ServiceMetrics
from .protocol import DEFAULT_ROUTE, validate_route_name
from .server import SearchService, ServiceConfig

#: One loadable index source: a path (``.npz`` file or segmented-store
#: directory), a loaded index, or an open store.
IndexSource = Union[str, Path, LibraryIndex, SegmentedStore]

#: Anything the registry accepts as "the indexes to serve".
IndexSources = Union[
    IndexSource,
    Mapping[str, IndexSource],
    Sequence[Tuple[str, IndexSource]],
]

#: Drain bound for closes the registry performs on behalf of a live
#: request (/reload remove/swap cleanup): a wedged engine fails its
#: pending futures after this many seconds instead of parking the
#: handler thread forever.
ROUTE_CLOSE_TIMEOUT = 30.0


class UnknownRouteError(LookupError):
    """A request named a route the registry does not serve."""

    def __init__(self, route: str, known: Sequence[str]) -> None:
        super().__init__(
            f"unknown route {route!r}; serving {sorted(known)}"
        )
        self.route = route


def normalize_index_sources(indexes: IndexSources) -> "Dict[str, object]":
    """Coerce any accepted spec into an ordered ``{name: source}`` dict.

    A bare path / index becomes the single :data:`DEFAULT_ROUTE` entry,
    preserving the original single-index ``serve()`` signature.
    """
    if isinstance(indexes, (str, Path, LibraryIndex, SegmentedStore)):
        return {DEFAULT_ROUTE: indexes}
    if isinstance(indexes, Mapping):
        items = list(indexes.items())
    else:
        items = [tuple(entry) for entry in indexes]
    if not items:
        raise ValueError("at least one index route is required")
    out: Dict[str, object] = {}
    for name, source in items:
        validate_route_name(name)
        if name in out:
            raise ValueError(f"duplicate route name {name!r}")
        out[name] = source
    return out


class IndexRegistry:
    """Loads and owns several route-keyed :class:`SearchService`\\ s.

    Parameters
    ----------
    indexes:
        ``{route: index-or-path}`` (also accepts a sequence of pairs, or
        a bare path/index which becomes the ``"default"`` route).
    default_route:
        Route served when a request names none; defaults to the first
        route given.
    config:
        One :class:`ServiceConfig` shared by every route (each route
        still gets its own cache/scheduler *instances*).
    metrics:
        Optional pre-built :class:`ServiceMetrics`; by default the
        registry creates one and threads it through every route.
    """

    def __init__(
        self,
        indexes: IndexSources,
        default_route: Optional[str] = None,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        sources = normalize_index_sources(indexes)
        self._init_state(config, metrics or ServiceMetrics())
        try:
            for name, source in sources.items():
                self._services[name] = SearchService(
                    source, config=config, metrics=self.metrics, route=name
                )
            if default_route is None:
                default_route = next(iter(sources))
            if default_route not in self._services:
                raise ValueError(
                    f"default route {default_route!r} is not among the "
                    f"configured routes {sorted(self._services)}"
                )
        except BaseException:
            # A failure after services were built — a later index not
            # loading, or a bad default_route — must not leak them
            # (flusher threads, engines), especially for callers that
            # retry construction.
            for service in self._services.values():
                service.close(timeout=ROUTE_CLOSE_TIMEOUT)
            raise
        self.default_route = default_route

    def _init_state(
        self, config: Optional[ServiceConfig], metrics: ServiceMetrics
    ) -> None:
        """The full per-instance field list, shared by both constructors."""
        self.config = config
        self.metrics = metrics
        self._lock = threading.RLock()
        self._services: Dict[str, SearchService] = {}
        self._closed = False
        #: Routes whose lifecycle an outside caller owns (the adopted
        #: service of :meth:`from_service`); :meth:`close_added_routes`
        #: skips them.
        self._externally_owned: frozenset = frozenset()

    @classmethod
    def from_service(
        cls, service: SearchService, name: Optional[str] = None
    ) -> "IndexRegistry":
        """Wrap an already-built service as a single-route registry.

        Keeps the old ``start_server(SearchService(...))`` call sites
        working: the service's own metrics become the registry's, and
        the caller keeps ownership of the service's lifecycle.
        """
        registry = cls.__new__(cls)
        registry._init_state(service.config, service.metrics)
        route = name or service.route
        registry._services[route] = service
        registry._externally_owned = frozenset([route])
        registry.default_route = route
        return registry

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def get(self, route: Optional[str] = None) -> SearchService:
        """The service for ``route`` (``None`` -> default route)."""
        with self._lock:
            name = route if route is not None else self.default_route
            service = self._services.get(name)
            if service is None:
                raise UnknownRouteError(name, list(self._services))
            return service

    def route_names(self) -> List[str]:
        """Sorted names of the currently served routes."""
        with self._lock:
            return sorted(self._services)

    def __contains__(self, route: str) -> bool:
        with self._lock:
            return route in self._services

    def __len__(self) -> int:
        with self._lock:
            return len(self._services)

    # ------------------------------------------------------------------
    # live mutation (the /reload surface)
    # ------------------------------------------------------------------

    def reload_route(
        self,
        route: Optional[str] = None,
        index_path: Union[str, Path, None] = None,
    ) -> SearchService:
        """Swap one route's index (or add a brand-new route).

        An existing route is hot-swapped in place via
        :meth:`SearchService.reload` — its scheduler keeps running, its
        cache is cleared, and only that route's engine swap waits for
        the batch currently in flight.  A route the registry has never
        seen requires ``index_path`` and is built *off the registry
        lock* (index loads take seconds; other routes must keep
        serving), then attached atomically.  Returns the serving
        service.
        """
        name = route if route is not None else self.default_route
        validate_route_name(name)
        with self._lock:
            if self._closed:
                raise RuntimeError("registry is closed")
            service = self._services.get(name)
        if service is not None:
            try:
                service.reload(index_path)
            except RuntimeError:
                # The service was closed under us — by a concurrent
                # remove_route (the route is gone: report 404-shaped)
                # or by close() (shutdown: let the error propagate).
                if name not in self:
                    raise UnknownRouteError(
                        name, self.route_names()
                    ) from None
                raise
            with self._lock:
                detached = self._services.get(name) is not service
            if detached:
                # remove_route won the race after the swap: its close()
                # ran against the old engine, so re-close to release
                # the engine the reload just installed, and tell the
                # caller the route is no longer served.
                service.close(timeout=ROUTE_CLOSE_TIMEOUT)
                raise UnknownRouteError(name, self.route_names())
            return service
        if index_path is None:
            raise UnknownRouteError(name, self.route_names())
        replacement = SearchService(
            Path(index_path),
            config=self.config,
            metrics=self.metrics,
            route=name,
        )
        with self._lock:
            closed = self._closed
            displaced = None if closed else self._services.get(name)
            if not closed:
                self._services[name] = replacement
        if closed:
            # close() won the race while the index was loading; a route
            # attached now would never be drained or closed.
            replacement.close(timeout=ROUTE_CLOSE_TIMEOUT)
            raise RuntimeError("registry is closed")
        if displaced is not None:
            # Two concurrent adds of the same new route: last one wins,
            # the displaced twin drains and closes.
            displaced.close(timeout=ROUTE_CLOSE_TIMEOUT)
        return replacement

    def remove_route(self, route: str) -> None:
        """Detach ``route`` and close it gracefully.

        The removed service drains its queued requests before its
        engine closes; requests already executing against it complete.
        The default route is load-bearing (it answers route-less
        requests) and cannot be removed.
        """
        with self._lock:
            if route == self.default_route:
                raise ValueError(
                    f"cannot remove the default route {route!r}"
                )
            service = self._services.pop(route, None)
        if service is None:
            raise UnknownRouteError(route, self.route_names())
        service.close(timeout=ROUTE_CLOSE_TIMEOUT)

    # ------------------------------------------------------------------
    # aggregation / lifecycle
    # ------------------------------------------------------------------

    def _snapshot(self) -> Dict[str, SearchService]:
        with self._lock:
            return dict(self._services)

    def healthz(self) -> Dict[str, object]:
        """Default route's payload plus a per-route breakdown."""
        services = self._snapshot()
        payload = dict(services[self.default_route].healthz())
        payload["default_route"] = self.default_route
        payload["routes"] = {
            name: service.healthz() for name, service in sorted(services.items())
        }
        return payload

    def stats(self) -> Dict[str, object]:
        """Default route's counters plus a per-route breakdown."""
        services = self._snapshot()
        payload = dict(services[self.default_route].stats())
        payload["default_route"] = self.default_route
        payload["routes"] = {
            name: service.stats() for name, service in sorted(services.items())
        }
        return payload

    def render_metrics(self) -> str:
        """The Prometheus text payload for ``/metrics``."""
        return self.metrics.render()

    def close_added_routes(self, timeout: Optional[float] = None) -> None:
        """Close every route the registry itself created.

        Externally-owned routes (the adopted service of
        :meth:`from_service`) are left untouched.

        This is the shutdown hook for servers built from a bare
        :class:`SearchService`: routes hot-added over ``/reload`` have
        no owner but the implicit registry, so the server closes them
        here while the caller keeps closing its own service.
        """
        with self._lock:
            added = {
                name: service
                for name, service in self._services.items()
                if name not in self._externally_owned
            }
        for service in added.values():
            service.close(timeout=timeout)

    def close(self, timeout: Optional[float] = None) -> None:
        """Close every route (idempotent); each drains before closing.

        A concurrent second caller closes (and therefore *waits on*)
        the same services rather than returning while the first caller
        is still draining them — ``SearchService.close`` is idempotent
        and blocking, so the per-service calls are safe to repeat and
        every caller returns only once the drain is done.  That
        matters in ``serve()``: the watchdog and the main thread both
        call this, and the main thread must not report a finished
        shutdown mid-drain.
        """
        with self._lock:
            self._closed = True
            services = dict(self._services)
        for service in services.values():
            service.close(timeout=timeout)
        # The routes share this registry's ServiceMetrics; with all of
        # them closed, its tracer listener has nothing left to export.
        self.metrics.detach(get_tracer())

    def __enter__(self) -> "IndexRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
