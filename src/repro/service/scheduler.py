"""Dynamic micro-batching: coalesce single-spectrum requests.

The service's hot path is a *vectorized batch search* (one fused
``encode_batch`` pass plus one dense matmul per charge bucket), but
online clients arrive one spectrum at a time.
The :class:`MicroBatchScheduler` bridges the two: ``submit`` enqueues a
spectrum and returns a :class:`~concurrent.futures.Future`; a single
background flusher thread collects the queue into batches and hands
them to the runner callback, flushing as soon as either

* ``max_batch`` requests are waiting (**full** flush — zero added
  latency for saturated traffic), or
* the *oldest* queued request has waited ``max_wait_ms`` (**timeout**
  flush — bounded latency for trickle traffic).

The runner executes outside the queue lock, so clients keep enqueuing
while a batch is being scored; that is what lets the next batch grow
under load (the HyperOMS observation: OMS throughput is batching).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.trace import Span, get_tracer


@dataclass
class SchedulerStats:
    """Flush accounting, exported via the service ``/stats`` endpoint."""

    requests: int = 0
    batches: int = 0
    full_flushes: int = 0
    timeout_flushes: int = 0
    drain_flushes: int = 0
    max_batch_size: int = 0
    total_batched: int = 0
    total_queue_wait_seconds: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_submit(self, count: int = 1) -> None:
        """Count ``count`` spectra submitted to the batcher."""
        with self._lock:
            self.requests += count

    def record_flush(self, size: int, reason: str, wait_seconds: float) -> None:
        """Record one flushed batch (size, trigger reason, queue wait)."""
        with self._lock:
            self.batches += 1
            self.total_batched += size
            self.max_batch_size = max(self.max_batch_size, size)
            self.total_queue_wait_seconds += wait_seconds
            if reason == "full":
                self.full_flushes += 1
            elif reason == "timeout":
                self.timeout_flushes += 1
            else:
                self.drain_flushes += 1

    def snapshot(self) -> Dict[str, float]:
        """Point-in-time copy of the counters as plain floats."""
        with self._lock:
            return {
                "requests": self.requests,
                "batches": self.batches,
                "full_flushes": self.full_flushes,
                "timeout_flushes": self.timeout_flushes,
                "drain_flushes": self.drain_flushes,
                "max_batch_size": self.max_batch_size,
                "mean_batch_size": (
                    self.total_batched / self.batches if self.batches else 0.0
                ),
                "mean_queue_wait_ms": (
                    1000.0 * self.total_queue_wait_seconds / self.total_batched
                    if self.total_batched
                    else 0.0
                ),
            }


class MicroBatchScheduler:
    """Queue single requests, flush them to a batch runner.

    Parameters
    ----------
    runner:
        ``runner(items) -> results`` where ``items`` is the list of
        submitted objects in arrival order and ``results`` is a
        same-length sequence; ``results[i]`` resolves the future of
        ``items[i]``.  A runner exception fails every future in the
        batch (clients see the error, the scheduler survives).
    max_batch:
        Flush as soon as this many requests are queued (>= 1).
    max_wait_ms:
        Flush when the oldest queued request is this old (>= 0; zero
        means every request flushes immediately, i.e. no batching).
    flush_observer:
        Optional ``observer(size, reason, wait_seconds)`` called once
        per flushed batch (``wait_seconds`` is the summed queue wait of
        the batch).  Used by the service's metrics export; observer
        exceptions are swallowed so instrumentation can never kill the
        flusher.
    route:
        Optional route label stamped onto the scheduler's trace spans
        (``scheduler.batch`` / ``scheduler.queue_wait``), so per-stage
        histograms attribute flusher time to the right route.
    """

    def __init__(
        self,
        runner: Callable[[List[object]], Sequence[object]],
        max_batch: int = 32,
        max_wait_ms: float = 5.0,
        flush_observer: Optional[Callable[[int, str, float], None]] = None,
        route: Optional[str] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._runner = runner
        self.max_batch = max_batch
        self.max_wait = max_wait_ms / 1000.0
        self.stats = SchedulerStats()
        self._flush_observer = flush_observer
        self.route = route
        #: Queue entries: (item, future, enqueue_monotonic, trace_ctx).
        #: ``trace_ctx`` is the submitter's current span (or None), so
        #: the flusher can parent each request's queue-wait span on the
        #: HTTP request that enqueued it.
        self._queue: List[Tuple[object, Future, float, Optional[Span]]] = []
        self._inflight: List[Tuple[object, Future, float, Optional[Span]]] = []
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._thread = threading.Thread(
            target=self._flush_loop, name="microbatch-flusher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------

    def submit(self, item: object) -> "Future":
        """Enqueue one request; the future resolves after its batch runs."""
        return self.submit_many([item])[0]

    def submit_many(self, items: Sequence[object]) -> List["Future"]:
        """Enqueue several requests under one lock acquisition.

        Semantically identical to calling :meth:`submit` in a loop but
        pays the queue lock and flusher wake-up once, which matters for
        clients streaming whole spectrum lists (``/search_batch``).
        """
        futures: List[Future] = [Future() for _ in items]
        now = time.monotonic()
        ctx = get_tracer().capture()
        with self._wakeup:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            for item, future in zip(items, futures):
                self._queue.append((item, future, now, ctx))
            self.stats.record_submit(len(futures))
            self._wakeup.notify()
        return futures

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the flusher (idempotent, safe to call concurrently).

        ``drain=True`` (the default) lets queued requests run as final
        batches before the thread exits; ``drain=False`` fails them
        with :class:`RuntimeError` instead.

        ``timeout`` bounds the join: if the flusher is still alive after
        ``timeout`` seconds (a wedged runner — e.g. a worker pool that
        will never answer), every future still pending — queued *and*
        in-flight — is failed with :class:`RuntimeError` so no client
        hangs on ``result()``, and the daemon flusher thread is left to
        die with the process.  A concurrent second ``close()`` call also
        waits for the drain rather than returning while batches are
        still running (callers close the engine right after, which must
        not happen under a live flusher).
        """
        abandoned: List[Tuple[object, Future, float, Optional[Span]]] = []
        with self._wakeup:
            if not self._closed:
                self._closed = True
                if not drain:
                    abandoned, self._queue = self._queue, []
                self._wakeup.notify_all()
        for entry in abandoned:
            _fail_future(entry[1], RuntimeError("scheduler closed"))
        self._thread.join(timeout)
        if not self._thread.is_alive():
            return
        # Wedged runner: the drain will never finish.  Resolve every
        # pending future with an error; _run_batch's guarded result
        # delivery makes a late runner completion harmless.
        with self._wakeup:
            pending = self._queue + self._inflight
            self._queue = []
        error = RuntimeError(
            "scheduler closed with a batch still in flight "
            f"(runner did not finish within {timeout}s)"
        )
        for entry in pending:
            _fail_future(entry[1], error)

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting (queued plus in-flight)."""
        with self._lock:
            return len(self._queue) + len(self._inflight)

    def snapshot(self) -> Dict[str, float]:
        """Flush counters plus the live queue depth (``/stats`` export)."""
        data = self.stats.snapshot()
        data["queue_depth"] = self.queue_depth
        return data

    # ------------------------------------------------------------------
    # flusher side
    # ------------------------------------------------------------------

    def _flush_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if not self._queue:
                    return  # closed and drained
                if not self._closed:
                    # Wait for the batch to fill, but never keep the
                    # oldest request waiting past its deadline.
                    deadline = self._queue[0][2] + self.max_wait
                    while (
                        len(self._queue) < self.max_batch
                        and not self._closed
                        and time.monotonic() < deadline
                    ):
                        self._wakeup.wait(deadline - time.monotonic())
                # Re-check closed: a close() arriving mid-wait is a
                # drain flush, not a timeout.
                if len(self._queue) >= self.max_batch:
                    reason = "full"
                elif self._closed:
                    reason = "drain"
                else:
                    reason = "timeout"
                batch = self._queue[: self.max_batch]
                del self._queue[: len(batch)]
                self._inflight = batch
            if batch:
                # close(drain=False) can empty the queue while the
                # flusher is mid-wait; don't run (or count) a phantom
                # zero-size batch.
                self._run_batch(batch, reason)
            with self._lock:
                self._inflight = []

    def _run_batch(
        self, batch: List[Tuple[object, Future, float, Optional[Span]]], reason: str
    ) -> None:
        now = time.monotonic()
        wait_seconds = sum(now - entry[2] for entry in batch)
        self.stats.record_flush(len(batch), reason, wait_seconds)
        if self._flush_observer is not None:
            try:
                self._flush_observer(len(batch), reason, wait_seconds)
            except Exception:  # noqa: BLE001 - metrics must never kill us
                pass
        tracer = get_tracer()
        request_ids: List[str] = []
        if tracer.enabled:
            # Each request's queue wait joins the trace under the span
            # that submitted it (the HTTP handler), even though it is
            # measured here on the flusher thread.
            for entry in batch:
                tracer.emit(
                    "scheduler.queue_wait",
                    duration=now - entry[2],
                    parent=entry[3],
                    route=self.route,
                    reason=reason,
                )
                ctx = entry[3]
                if (
                    ctx is not None
                    and ctx.request_id
                    and ctx.request_id not in request_ids
                ):
                    request_ids.append(ctx.request_id)
        try:
            # A batch serving exactly one request inherits its id, so
            # that request's trace reaches through the engine spans
            # (encode / prefilter / scoring); a shared batch instead
            # lists every request it coalesced.
            with tracer.span(
                "scheduler.batch",
                request_id=request_ids[0] if len(request_ids) == 1 else None,
                route=self.route,
                size=len(batch),
                reason=reason,
                requests=list(request_ids),
            ):
                results = self._runner([entry[0] for entry in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"runner returned {len(results)} results for a batch "
                    f"of {len(batch)}"
                )
        except BaseException as error:  # noqa: BLE001 - forwarded to futures
            for entry in batch:
                _fail_future(entry[1], error)
            return
        for (_item, future, _t, _ctx), result in zip(batch, results):
            # A timed-out close() may have failed this future already;
            # delivering into a done future would raise InvalidStateError
            # and kill the flusher mid-batch.
            try:
                future.set_result(result)
            except InvalidStateError:
                pass


def _fail_future(future: "Future", error: BaseException) -> None:
    """``set_exception`` tolerating an already-resolved future."""
    try:
        future.set_exception(error)
    except InvalidStateError:
        pass
