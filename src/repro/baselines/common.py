"""Shared machinery for the comparison baselines.

Both ANN-SoLo-like and brute-force searchers operate on *binned sparse
vectors* (not hypervectors), so they share reference preparation, the
candidate index, and the query loop; concrete searchers only implement
``score_candidates``.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..ms.preprocessing import PreprocessingConfig, preprocess
from ..ms.spectrum import Spectrum
from ..ms.vectorize import BinningConfig, SparseVector, vectorize
from ..oms.candidates import CandidateIndex, WindowConfig
from ..oms.psm import PSM, SearchResult


class VectorSearcherBase(ABC):
    """Query loop + reference preparation for vector-space searchers."""

    name = "vector-base"

    def __init__(
        self,
        references: Sequence[Spectrum],
        preprocessing: Optional[PreprocessingConfig] = None,
        binning: Optional[BinningConfig] = None,
        windows: Optional[WindowConfig] = None,
        mode: str = "open",
    ) -> None:
        if mode not in ("open", "standard", "cascade"):
            raise ValueError(f"unknown search mode {mode!r}")
        self.preprocessing = preprocessing or PreprocessingConfig()
        self.binning = binning or BinningConfig()
        self.windows = windows or WindowConfig()
        self.mode = mode

        kept: List[Tuple[Spectrum, SparseVector]] = []
        for reference in references:
            processed = preprocess(reference, self.preprocessing)
            if processed is not None:
                kept.append((reference, vectorize(processed, self.binning)))
        if not kept:
            raise ValueError("no reference spectrum survived preprocessing")
        self.references = [original for original, _ in kept]
        self.reference_vectors = [vector for _, vector in kept]
        self.index = CandidateIndex(self.references, self.windows)

    @abstractmethod
    def score_candidates(
        self,
        query: Spectrum,
        query_vector: SparseVector,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Similarity of the query against each candidate position."""

    def _candidates(self, query: Spectrum, mode: str) -> np.ndarray:
        if mode == "standard":
            return self.index.select_standard(query)
        return self.index.select_open(query)

    def _best_psm(
        self,
        query: Spectrum,
        query_vector: SparseVector,
        positions: np.ndarray,
        mode: str,
    ) -> Optional[PSM]:
        if len(positions) == 0:
            return None
        scores = self.score_candidates(query, query_vector, positions)
        best = int(np.argmax(scores))
        reference = self.references[int(positions[best])]
        return PSM(
            query_id=query.identifier,
            reference_id=reference.identifier,
            peptide_key=reference.peptide_key(),
            score=float(scores[best]),
            is_decoy=reference.is_decoy,
            precursor_mass_difference=query.neutral_mass - reference.neutral_mass,
            mode=mode,
        )

    def search_one(self, query: Spectrum) -> Optional[PSM]:
        """Best PSM for one query, honouring the configured mode."""
        processed = preprocess(query, self.preprocessing)
        if processed is None:
            return None
        query_vector = vectorize(processed, self.binning)
        if self.mode == "cascade":
            psm = self._best_psm(
                query, query_vector, self._candidates(query, "standard"), "standard"
            )
            if psm is not None:
                return psm
            return self._best_psm(
                query, query_vector, self._candidates(query, "open"), "open"
            )
        return self._best_psm(
            query, query_vector, self._candidates(query, self.mode), self.mode
        )

    def search(self, queries: Sequence[Spectrum]) -> SearchResult:
        """Search every query; one best PSM per matched query."""
        start = time.perf_counter()
        psms: List[PSM] = []
        unmatched = 0
        for query in queries:
            psm = self.search_one(query)
            if psm is None:
                unmatched += 1
            else:
                psms.append(psm)
        return SearchResult(
            psms=psms,
            num_queries=len(queries),
            num_unmatched=unmatched,
            elapsed_seconds=time.perf_counter() - start,
            backend_name=self.name,
        )
