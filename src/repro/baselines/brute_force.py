"""Exact cosine-similarity searcher (oracle scoring baseline).

Scores every candidate by the cosine of the binned intensity vectors —
no shifting, no hashing, no encoding loss.  Useful as a floor/ceiling
reference in tests: HD search should agree with this on unmodified
matches, and the shifted-dot-product baseline should beat it on
modified ones.
"""

from __future__ import annotations

import numpy as np

from ..ms.spectrum import Spectrum
from ..ms.vectorize import SparseVector, cosine_similarity
from .common import VectorSearcherBase


class BruteForceSearcher(VectorSearcherBase):
    """Plain cosine similarity over candidate references."""

    name = "brute-force-cosine"

    def score_candidates(
        self,
        query: Spectrum,
        query_vector: SparseVector,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Score the candidate references against one query spectrum."""
        scores = np.empty(len(positions), dtype=np.float64)
        for row, position in enumerate(positions):
            scores[row] = cosine_similarity(
                query_vector, self.reference_vectors[int(position)]
            )
        return scores
