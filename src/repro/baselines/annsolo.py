"""ANN-SoLo-style baseline: cascade search with shifted dot product.

ANN-SoLo (Bittremieux et al.; Arab et al. 2023) runs a *cascade*: a
standard narrow-window search first, then an open search for the
leftovers, scoring candidates with the **shifted dot product (SDP)** —
a cosine-like score in which a reference peak may match a query peak
either at its own m/z or at its m/z *plus the precursor mass
difference*.  Fragments containing a modified residue shift by exactly
that difference, so the SDP recovers the full fragment evidence for
modified matches where a plain cosine sees only ~half of it.

This reimplementation works on binned sparse vectors: for each
reference bin, the contribution is the larger of the direct and the
shifted query-bin product (each query bin is consumed at most once via
the max, mirroring ANN-SoLo's one-to-one peak matching).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..ms.preprocessing import PreprocessingConfig
from ..ms.spectrum import Spectrum
from ..ms.vectorize import BinningConfig, SparseVector
from ..oms.candidates import WindowConfig
from .common import VectorSearcherBase


def shifted_dot_product(
    query: SparseVector,
    reference: SparseVector,
    shift_bins: int,
) -> float:
    """Cosine-normalised shifted dot product.

    ``shift_bins`` is the precursor mass difference expressed in bins;
    a reference peak at bin ``b`` may match the query at ``b`` (direct,
    unmodified fragment) or at ``b + shift_bins`` (fragment carrying the
    modification).  Each reference peak contributes its best alignment.
    """
    if len(query) == 0 or len(reference) == 0:
        return 0.0
    dense_query = np.zeros(query.num_bins, dtype=np.float64)
    dense_query[query.indices] = query.values

    direct = dense_query[reference.indices]
    shifted_indices = reference.indices + shift_bins
    valid = (shifted_indices >= 0) & (shifted_indices < query.num_bins)
    shifted = np.zeros(len(reference.indices), dtype=np.float64)
    shifted[valid] = dense_query[shifted_indices[valid]]

    contributions = np.maximum(direct, shifted) * reference.values
    denominator = query.norm * reference.norm
    return float(contributions.sum() / denominator) if denominator else 0.0


class AnnSoloSearcher(VectorSearcherBase):
    """Cascade open search with shifted-dot-product scoring."""

    name = "ann-solo"

    def __init__(
        self,
        references: Sequence[Spectrum],
        preprocessing: Optional[PreprocessingConfig] = None,
        binning: Optional[BinningConfig] = None,
        windows: Optional[WindowConfig] = None,
        mode: str = "cascade",
    ) -> None:
        super().__init__(references, preprocessing, binning, windows, mode)

    def score_candidates(
        self,
        query: Spectrum,
        query_vector: SparseVector,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Score the candidate references against one query spectrum."""
        scores = np.empty(len(positions), dtype=np.float64)
        for row, position in enumerate(positions):
            reference = self.references[int(position)]
            reference_vector = self.reference_vectors[int(position)]
            mass_difference = query.neutral_mass - reference.neutral_mass
            shift_bins = int(round(mass_difference / self.binning.bin_width))
            scores[row] = shifted_dot_product(
                query_vector, reference_vector, shift_bins
            )
        return scores
