"""HyperOMS-style baseline: binary HDC open search (Kang et al., PACT'22).

HyperOMS is the GPU accelerator the paper benchmarks against: the same
ID-Level encoding pipeline but with strictly *binary* (1-bit) ID
hypervectors, classic (non-chunked) level hypervectors, and exact
digital Hamming search.  This wrapper configures the shared HD searcher
accordingly, with an independent seed so its codebooks differ from this
work's — matching the reality that two tools' random projections are
uncorrelated.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..hdc.encoder import SpectrumEncoder
from ..hdc.spaces import HDSpace, HDSpaceConfig
from ..ms.preprocessing import PreprocessingConfig
from ..ms.spectrum import Spectrum
from ..ms.vectorize import BinningConfig
from ..oms.candidates import WindowConfig
from ..oms.psm import SearchResult
from ..oms.search import HDOmsSearcher, HDSearchConfig, PackedBackend


class HyperOmsSearcher:
    """Binary-HDC open searcher mirroring HyperOMS's configuration."""

    name = "hyperoms"

    def __init__(
        self,
        references: Sequence[Spectrum],
        dim: int = 8192,
        num_levels: int = 32,
        seed: int = 2022,
        preprocessing: Optional[PreprocessingConfig] = None,
        binning: Optional[BinningConfig] = None,
        windows: Optional[WindowConfig] = None,
        mode: str = "open",
    ) -> None:
        binning = binning or BinningConfig()
        space = HDSpace(
            HDSpaceConfig(
                dim=dim,
                num_bins=binning.num_bins,
                num_levels=num_levels,
                id_precision_bits=1,
                chunked=False,
                seed=seed,
            )
        )
        encoder = SpectrumEncoder(space, binning)
        self._searcher = HDOmsSearcher(
            encoder,
            references,
            preprocessing=preprocessing,
            windows=windows,
            config=HDSearchConfig(mode=mode),
            backend=PackedBackend(),
        )

    @property
    def num_references(self) -> int:
        """Number of reference spectra in the library."""
        return self._searcher.num_references

    def search(self, queries: Sequence[Spectrum]) -> SearchResult:
        """Delegate to the shared HD searcher."""
        result = self._searcher.search(queries)
        result.backend_name = self.name
        return result

    def search_one(self, query: Spectrum):
        """Best PSM for a single query."""
        return self._searcher.search_one(query)
