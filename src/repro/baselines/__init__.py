"""Comparison baselines: ANN-SoLo-like, HyperOMS-like, brute force.

These reimplement the two state-of-the-art tools the paper benchmarks
against (Section 5.1.2) plus an exact-cosine oracle, all sharing the
candidate-selection and FDR machinery of :mod:`repro.oms` so that
Figure 10's Venn comparison is apples-to-apples.
"""

from .annsolo import AnnSoloSearcher, shifted_dot_product
from .brute_force import BruteForceSearcher
from .common import VectorSearcherBase
from .hyperoms import HyperOmsSearcher

__all__ = [
    "AnnSoloSearcher",
    "shifted_dot_product",
    "BruteForceSearcher",
    "VectorSearcherBase",
    "HyperOmsSearcher",
]
