#!/usr/bin/env python
"""Quickstart: open modification search in ~40 lines.

Builds a small synthetic spectral library, runs the full HD-OMS
pipeline (preprocess -> ID-Level encode -> Hamming search in a wide
precursor window -> target-decoy FDR), and prints what was identified.

Run:  python examples/quickstart.py
"""

from repro.hdc import HDSpaceConfig
from repro.ms import WorkloadConfig, build_workload
from repro.oms import OmsPipeline, PipelineConfig

# 1. A synthetic stand-in for a real experiment: a library of 2000
#    reference peptides and 300 query spectra, about half of which carry
#    a post-translational modification (mass-shifted precursor +
#    fragments), plus some foreign spectra that should NOT match.
workload = build_workload(
    WorkloadConfig(
        name="quickstart",
        num_references=2000,
        num_queries=300,
        modification_probability=0.5,
        foreign_fraction=0.1,
        seed=42,
    )
)

# 2. Configure the pipeline: 4096-dimensional hypervectors with 3-bit
#    multi-bit IDs (the paper's recommended setting) and a 1% FDR.
config = PipelineConfig(
    space=HDSpaceConfig(dim=4096, num_levels=32, id_precision_bits=3, seed=7),
    fdr_threshold=0.01,
)

# 3. Build the pipeline (generates decoys, encodes the library once)
#    and search.
pipeline = OmsPipeline.from_workload(workload, config)
result = pipeline.run_workload(workload)

# 4. Report.
print(f"queries searched      : {result.search_result.num_queries}")
print(f"library (with decoys) : {result.num_references_with_decoys}")
print(f"PSMs accepted at 1% FDR: {len(result.accepted_psms)}")
print(f"unique peptides        : {result.num_identifications}")
modified = sum(1 for psm in result.accepted_psms if psm.is_modified_match)
print(f"  of which modified    : {modified}")
print("ground-truth evaluation:", {
    key: round(value, 3) for key, value in result.evaluation.items()
})
for stage, seconds in result.timings.items():
    print(f"  {stage:22s}: {seconds * 1000:8.1f} ms")
