#!/usr/bin/env python
"""The co-design trade-off: density vs. error vs. identifications.

The paper's central argument in one script: storing more bits per cell
triples capacity per area (Section 5.2.1) but raises the storage bit
error rate (Figure 7) — and hyperdimensional computing absorbs exactly
that much error (Figure 11), making the dense-but-noisy configuration
the right operating point.

For each bits/cell setting this script reports:
  * silicon area to hold a 1M-spectrum library (area model),
  * measured storage BER after a day of relaxation (device model),
  * identifications when that BER hits the search (full pipeline).

Run:  python examples/mlc_tradeoff_study.py
"""

import numpy as np

from repro.experiments import iprg2012_like, run_fig11
from repro.rram import AreaModel, HypervectorStore, PAPER_TIME_POINTS_S

DIM = 4096
LIBRARY_SPECTRA = 1_000_000  # paper-scale library for the area column

area_model = AreaModel(feature_nm=22.0)
workload = iprg2012_like(scale=0.3)

print(f"{'bits/cell':>9s} {'area (mm^2)':>12s} {'BER @1day':>10s} "
      f"{'identifications':>15s}")

rng = np.random.default_rng(1)
sample_hvs = (rng.integers(0, 2, size=(48, DIM), dtype=np.int8) * 2 - 1)

for bits_per_cell in (1, 2, 3):
    # (1) silicon area for the reference library at this density
    area_mm2 = area_model.library_area_mm2(LIBRARY_SPECTRA, DIM, bits_per_cell)

    # (2) storage BER after one day of relaxation
    store = HypervectorStore(bits_per_cell, seed=bits_per_cell)
    store.write(sample_hvs)
    ber = store.read(PAPER_TIME_POINTS_S["after_1day"]).bit_error_rate

    # (3) identifications when exactly that BER corrupts the search
    result = run_fig11(
        workload=workload,
        dim=DIM,
        bers=(max(ber, 1e-4),),
        id_precisions=(3,),
        seed=17,
    )
    identifications = result.rows[0][1]

    print(f"{bits_per_cell:9d} {area_mm2:12.1f} {ber:10.2%} "
          f"{identifications:15d}")

print(
    "\nReading: 3 bits/cell cuts library area 3x; the ~14% BER it costs "
    "is at the edge of what HD tolerates (Figure 11), which is why the "
    "paper pairs MLC density with an error-robust algorithm rather than "
    "with ECC."
)
