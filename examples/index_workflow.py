#!/usr/bin/env python
"""Build the library index once, then search it many times.

The expensive stage of HD open modification search is encoding the
reference library into hypervectors.  This workflow shows the
production shape of the system:

1. encode + persist the library as a ``.npz`` index (pay once);
2. reload it (memory-mapped, milliseconds) and serve query batches —
   here twice: single-process via ``HDOmsSearcher.from_index`` and
   sharded across worker processes via ``ShardedSearcher``;
3. verify both returned exactly the same PSMs as a searcher built from
   scratch.

With ``--ann``, the index additionally persists Hamming-LSH hash
tables and a fourth search runs through the approximate candidate
prefilter (see docs/ann-tuning.md), reporting how many of its PSMs
match the exact ones.

Run:  python examples/index_workflow.py [--ann]
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.ann import AnnConfig
from repro.hdc import HDSpaceConfig, SpectrumEncoder, HDSpace
from repro.index import LibraryIndex, ShardedSearcher
from repro.ms import WorkloadConfig, build_workload
from repro.ms.vectorize import BinningConfig
from repro.oms import HDOmsSearcher, HDSearchConfig

USE_ANN = "--ann" in sys.argv[1:]
# A low threshold so the prefilter engages on this small demo library;
# production libraries should keep the default (see docs).
ANN = AnnConfig(ann_threshold=256) if USE_ANN else None

workload = build_workload(
    WorkloadConfig(
        name="index-workflow",
        num_references=1500,
        num_queries=200,
        modification_probability=0.5,
        seed=17,
    )
)
binning = BinningConfig()
space_config = HDSpaceConfig(
    dim=2048, num_bins=binning.num_bins, num_levels=16, id_precision_bits=3, seed=7
)

with tempfile.TemporaryDirectory() as scratch:
    index_path = Path(scratch) / "library.npz"

    # --- 1. build once ------------------------------------------------
    start = time.perf_counter()
    index = LibraryIndex.build(
        workload.references,
        space_config=space_config,
        binning=binning,
        source="index_workflow example",
        ann=ANN,
    )
    saved = index.save(index_path)
    build_s = time.perf_counter() - start
    print(index.summary())
    print(f"build + save        : {build_s * 1000:8.1f} ms -> {saved.name}")

    # --- 2a. search #1: reload, single process ------------------------
    start = time.perf_counter()
    loaded = LibraryIndex.load(saved)
    searcher = HDOmsSearcher.from_index(loaded)
    first = searcher.search(workload.queries)
    first_s = time.perf_counter() - start
    print(f"search #1 (1 proc)  : {first_s * 1000:8.1f} ms, {len(first.psms)} PSMs")

    # --- 2b. search #2: same index, sharded fan-out -------------------
    start = time.perf_counter()
    with ShardedSearcher(loaded, num_shards=4) as sharded:
        second = sharded.search(workload.queries)
    second_s = time.perf_counter() - start
    print(
        f"search #2 (sharded) : {second_s * 1000:8.1f} ms, "
        f"{len(second.psms)} PSMs on {second.backend_name}"
    )

    # --- 2c. optional: the ANN prefilter on the persisted tables ------
    if USE_ANN:
        start = time.perf_counter()
        ann_searcher = HDOmsSearcher.from_index(
            loaded, config=HDSearchConfig(ann=ANN)
        )
        approx = ann_searcher.search(workload.queries)
        ann_s = time.perf_counter() - start
        exact_triples = {
            (p.query_id, p.reference_id, p.score) for p in first.psms
        }
        agree = sum(
            (p.query_id, p.reference_id, p.score) in exact_triples
            for p in approx.psms
        )
        print(
            f"search #3 (ANN)     : {ann_s * 1000:8.1f} ms, "
            f"{len(approx.psms)} PSMs, {agree}/{len(approx.psms)} "
            f"identical to exact (modified queries are Hamming-far; "
            f"see docs/ann-tuning.md)"
        )

# --- 3. parity with the from-scratch searcher -------------------------
start = time.perf_counter()
scratch_searcher = HDOmsSearcher(
    SpectrumEncoder(HDSpace(space_config), binning), workload.references
)
reference = scratch_searcher.search(workload.queries)
scratch_s = time.perf_counter() - start
print(f"from-scratch search : {scratch_s * 1000:8.1f} ms (encodes everything)")

assert first.psms == reference.psms == second.psms
amortised = build_s + first_s + second_s
print(
    f"\nPSMs identical across all three paths. "
    f"Build-once + two searches took {amortised * 1000:.0f} ms vs "
    f"{2 * scratch_s * 1000:.0f} ms for two from-scratch runs."
)
