#!/usr/bin/env python
"""Serve two spectral libraries from one process, with metrics.

A production deployment rarely fronts a single library: per-organism
and per-instrument libraries coexist behind one endpoint.  This
workflow demonstrates the multi-index service end to end:

1. build + persist two independent library indexes ("yeast"-like and
   "human"-like synthetic stand-ins);
2. front both with one :class:`~repro.service.IndexRegistry` behind the
   stdlib HTTP server — each route gets its own result cache and
   micro-batch scheduler;
3. search the same spectra on both routes and verify each answer is
   bit-identical to a direct ``HDOmsSearcher`` run on that route's
   index (routing correctness);
4. hot-add a third route with ``/reload``, swap one route while the
   other keeps its warm cache, then scrape ``/metrics`` and show the
   per-route Prometheus counters.

Run:  python examples/multi_index_service.py
"""

import tempfile
import threading
from pathlib import Path

from repro.hdc import HDSpaceConfig
from repro.index import LibraryIndex
from repro.ms import WorkloadConfig, build_workload
from repro.ms.vectorize import BinningConfig
from repro.oms import HDOmsSearcher
from repro.service import (
    IndexRegistry,
    SearchClient,
    ServiceConfig,
    start_server,
)

binning = BinningConfig()


def build_library(name, num_references, seed):
    workload = build_workload(
        WorkloadConfig(
            name=name,
            num_references=num_references,
            num_queries=60,
            modification_probability=0.5,
            seed=seed,
        )
    )
    index = LibraryIndex.build(
        workload.references,
        space_config=HDSpaceConfig(
            dim=2048, num_bins=binning.num_bins, num_levels=16, seed=7
        ),
        binning=binning,
        source=name,
    )
    return workload, index


yeast_workload, yeast_index = build_library("yeastlike", 1200, seed=17)
human_workload, human_index = build_library("humanlike", 1600, seed=23)

# Route-level ground truth: the same query spectra, searched directly
# against each index.
queries = yeast_workload.queries
truth = {}
for route, index in (("yeast", yeast_index), ("human", human_index)):
    result = HDOmsSearcher.from_index(index).search(queries)
    truth[route] = {psm.query_id: psm for psm in result.psms}

with tempfile.TemporaryDirectory() as tmp:
    yeast_path = yeast_index.save(Path(tmp) / "yeast.npz")
    human_path = human_index.save(Path(tmp) / "human.npz")

    registry = IndexRegistry(
        {"yeast": yeast_path, "human": human_path},
        default_route="yeast",
        config=ServiceConfig(max_batch=32, max_wait_ms=5.0),
    )
    server = start_server(registry)  # ephemeral port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = SearchClient(f"http://{host}:{port}")
    print(f"serving routes {registry.route_names()} on port {port}")

    # -- routing correctness -------------------------------------------
    differing = 0
    for query in queries:
        default_psm = client.search(query)  # default route = yeast
        human_psm = client.search(query, route="human")
        assert default_psm == truth["yeast"].get(query.identifier)
        assert human_psm == truth["human"].get(query.identifier)
        if default_psm != human_psm:
            differing += 1
    print(
        f"searched {len(queries)} spectra on both routes: "
        f"{differing} answered differently (different libraries), "
        "every answer bit-identical to its route's direct searcher"
    )

    # -- per-route cache isolation -------------------------------------
    fresh = human_workload.queries[0]  # never searched anywhere yet
    client.search(fresh)  # warm it on yeast...
    repeat = client.search_detailed(fresh)
    assert repeat["cached"] is True
    cold = client.search_detailed(fresh, route="human")
    assert cold["cached"] is False  # ...yeast's hit never pre-warms human
    print(
        f"cache isolation: repeat on yeast cached={repeat['cached']}, "
        f"same spectrum on human cached={cold['cached']}"
    )

    # -- live route management -----------------------------------------
    reply = client.reload(human_path, route="mouse")  # hot-add
    print(f"added route {reply['route']!r}; serving {reply['routes']}")
    client.reload(route="human")  # swap human in place
    still_cached = client.search_detailed(queries[0])["cached"]
    print(f"yeast cache survived human's reload: cached={still_cached}")
    client.reload(route="mouse", remove=True)
    print(f"removed route 'mouse'; serving {client.healthz()['routes'].keys()}")

    # -- metrics -------------------------------------------------------
    interesting = (
        "hdoms_service_requests_total",
        "hdoms_service_cache_lookups_total",
        "hdoms_service_reloads_total",
    )
    print("\n/metrics excerpt:")
    for line in client.metrics().splitlines():
        if line.startswith(interesting):
            print(" ", line)

    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    registry.close()
    print("\nserver drained and closed")
