#!/usr/bin/env python
"""Full OMS workflow: modified-peptide discovery with tool comparison.

Reproduces the scientific story of the paper's introduction: a
reference library only contains *unmodified* peptides, yet ~half the
measured spectra carry modifications.  A standard (narrow-window)
search misses them; the open search recovers them.  The script then
cross-checks the HD search against the ANN-SoLo-style shifted-dot-
product baseline, and breaks identifications down by the modification
actually present (the "delta-mass histogram" view practitioners use).

Run:  python examples/open_search_workflow.py
"""

from collections import Counter

from repro.baselines import AnnSoloSearcher
from repro.hdc import HDSpaceConfig
from repro.ms import append_decoys
from repro.oms import (
    HDSearchConfig,
    OmsPipeline,
    PipelineConfig,
    analyze_modifications,
    grouped_fdr,
)
from repro.oms.pipeline import decoy_factory_for
from repro.experiments import iprg2012_like

FDR = 0.01

workload = iprg2012_like(scale=0.5)
print(f"workload: {workload.summary()}")

# --- 1. standard vs. open search with the same HD pipeline ----------
for mode in ("standard", "open"):
    config = PipelineConfig(
        space=HDSpaceConfig(dim=4096, id_precision_bits=3, seed=1),
        search=HDSearchConfig(mode=mode),
        fdr_threshold=FDR,
    )
    pipeline = OmsPipeline.from_workload(workload, config)
    result = pipeline.run_workload(workload)
    modified = sum(1 for psm in result.accepted_psms if psm.is_modified_match)
    print(
        f"{mode:>8s} search: {result.num_identifications:4d} peptides "
        f"({modified} modified matches), "
        f"precision={result.evaluation['precision']:.3f}"
    )

# --- 2. what modifications did the open search find? ----------------
config = PipelineConfig(
    space=HDSpaceConfig(dim=4096, id_precision_bits=3, seed=1),
    fdr_threshold=FDR,
)
pipeline = OmsPipeline.from_workload(workload, config)
result = pipeline.run_workload(workload)

truth_mods = {}
for query in workload.queries:
    if query.peptide is not None and query.peptide.is_modified:
        truth_mods[query.identifier] = query.peptide.modifications[0].name

found = Counter(
    truth_mods[psm.query_id]
    for psm in result.accepted_psms
    if psm.query_id in truth_mods and psm.is_modified_match
)
print("\nmodified identifications by PTM type (top 8):")
for name, count in found.most_common(8):
    print(f"  {name:20s} {count}")

delta_masses = [
    round(psm.precursor_mass_difference, 2)
    for psm in result.accepted_psms
    if psm.is_modified_match
]
print("\nmost frequent precursor delta masses (Da):")
for delta, count in Counter(delta_masses).most_common(6):
    print(f"  {delta:+8.2f}  x{count}")

# --- 2b. the practitioner's view: automated PTM annotation ----------
report = analyze_modifications(result.accepted_psms, min_count=2)
print("\nautomated modification report:")
print(report.render())

# --- 3. cross-check against the ANN-SoLo-style baseline -------------
library = append_decoys(workload.references, decoy_factory_for(workload), seed=99)
annsolo = AnnSoloSearcher(library)
baseline_accepted = grouped_fdr(annsolo.search(workload.queries).psms, FDR)
baseline_ids = {psm.peptide_key for psm in baseline_accepted if psm.peptide_key}
shared = result.identified_peptides & baseline_ids
print(
    f"\nANN-SoLo-style baseline: {len(baseline_ids)} peptides; "
    f"{len(shared)} shared with HD search "
    f"({len(shared) / max(len(baseline_ids), 1):.0%} agreement)"
)
