#!/usr/bin/env python
"""Working with real file formats: MGF queries and an MSP library.

Shows the package as a practitioner would use it on disk data: write a
synthetic library to MSP and queries to MGF, read both back, and search
— the exact workflow for users bringing their own files.

Run:  python examples/library_io_roundtrip.py
"""

import tempfile
from pathlib import Path

from repro.hdc import HDSpaceConfig
from repro.ms import (
    WorkloadConfig,
    build_workload,
    read_mgf,
    read_msp,
    write_mgf,
    write_msp,
)
from repro.oms import OmsPipeline, PipelineConfig
from repro.oms.pipeline import decoy_factory_for

workload = build_workload(
    WorkloadConfig(name="io-demo", num_references=800, num_queries=120, seed=77)
)

with tempfile.TemporaryDirectory() as tmp:
    library_path = Path(tmp) / "library.msp"
    queries_path = Path(tmp) / "queries.mgf"

    num_refs = write_msp(workload.references, library_path)
    num_queries = write_mgf(workload.queries, queries_path)
    print(f"wrote {num_refs} library entries -> {library_path.name}")
    print(f"wrote {num_queries} query spectra -> {queries_path.name}")

    references = list(read_msp(library_path))
    queries = list(read_mgf(queries_path))
    print(f"read back {len(references)} references, {len(queries)} queries")

    annotated = sum(1 for ref in references if ref.peptide is not None)
    print(f"library entries with parsed peptide annotations: {annotated}")

    pipeline = OmsPipeline(
        references,
        decoy_factory_for(workload),
        config=PipelineConfig(
            space=HDSpaceConfig(dim=2048, id_precision_bits=3, seed=3)
        ),
    )
    result = pipeline.run(queries)
    print(
        f"identified {result.num_identifications} peptides at 1% FDR "
        "from file-loaded data"
    )
