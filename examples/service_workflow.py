#!/usr/bin/env python
"""Run the online search service end to end, in one process.

The production shape of the system is a long-lived server
(``repro serve``) answering concurrent single-spectrum requests.  This
workflow shows the whole loop without leaving Python:

1. build + persist a library index;
2. start a :class:`~repro.service.SearchService` behind the stdlib
   HTTP server (dynamic micro-batching + LRU result cache);
3. hit it with concurrent :class:`~repro.service.SearchClient` threads
   and verify every PSM is bit-identical to a direct
   ``HDOmsSearcher`` run;
4. resubmit the same spectra to watch the cache absorb them, then hot
   ``/reload`` the index and shut down gracefully.

Run:  python examples/service_workflow.py
"""

import tempfile
import threading
import time
from pathlib import Path

from repro.hdc import HDSpaceConfig
from repro.index import LibraryIndex
from repro.ms import WorkloadConfig, build_workload
from repro.ms.vectorize import BinningConfig
from repro.oms import HDOmsSearcher
from repro.service import SearchClient, SearchService, ServiceConfig, start_server

workload = build_workload(
    WorkloadConfig(
        name="service-workflow",
        num_references=1500,
        num_queries=160,
        modification_probability=0.5,
        seed=17,
    )
)
binning = BinningConfig()
index = LibraryIndex.build(
    workload.references,
    space_config=HDSpaceConfig(
        dim=2048, num_bins=binning.num_bins, num_levels=16, seed=7
    ),
    binning=binning,
    source="service-workflow",
)
baseline = HDOmsSearcher.from_index(index).search(workload.queries)
by_query = {psm.query_id: psm for psm in baseline.psms}

with tempfile.TemporaryDirectory() as tmp:
    path = index.save(Path(tmp) / "library.npz")
    service = SearchService(
        path, ServiceConfig(max_batch=64, max_wait_ms=5.0, cache_capacity=2048)
    )
    server = start_server(service)  # ephemeral port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    print(f"serving {service.index.summary()} on http://{host}:{port}")

    client = SearchClient(f"http://{host}:{port}")
    results = {}

    def worker(shard: int) -> None:
        for query in workload.queries[shard::8]:
            results[query.identifier] = client.search(query)

    start = time.perf_counter()
    threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start

    mismatches = sum(
        1
        for query in workload.queries
        if results[query.identifier] != by_query.get(query.identifier)
    )
    stats = client.stats()
    print(
        f"8 concurrent clients, {len(workload.queries)} spectra in "
        f"{elapsed:.2f}s ({len(workload.queries) / elapsed:.0f} q/s), "
        f"mean batch {stats['scheduler']['mean_batch_size']:.1f}"
    )
    print(f"mismatches vs direct HDOmsSearcher: {mismatches}")
    assert mismatches == 0

    # Same spectra again: the result cache answers without the engine.
    start = time.perf_counter()
    for query in workload.queries[:40]:
        client.search(query)
    cached = time.perf_counter() - start
    print(
        f"40 repeats in {cached * 1000:.0f} ms, cache stats: "
        f"{client.stats()['cache']}"
    )

    print("reload:", client.reload()["status"])
    server.shutdown()
    server.server_close()
    service.close()
    print("drained and closed")
