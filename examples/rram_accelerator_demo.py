#!/usr/bin/env python
"""Run the OMS pipeline on the simulated MLC RRAM accelerator.

Walks through everything the paper's hardware does, on the behavioural
chip model:

1. characterises the device (storage BER at 1/2/3 bits per cell after
   relaxation — Figure 7's measurement);
2. indexes a reference library on the in-memory search fabric and
   encodes queries through the chunked in-memory encoder (Section 4.2);
3. searches and compares accuracy against the exact digital pipeline;
4. prints the modelled speedup/energy story at paper scale (Figure 12).

Run:  python examples/rram_accelerator_demo.py
"""

import numpy as np

from repro.accelerator import (
    AcceleratorConfig,
    OmsAccelerator,
    PAPER_IPRG2012_SHAPE,
    energy_improvements,
    speedups_vs_this_work,
)
from repro.hdc import HDSpaceConfig
from repro.ms import append_decoys
from repro.oms import HDOmsSearcher, PackedBackend, grouped_fdr
from repro.oms.pipeline import decoy_factory_for
from repro.rram import HypervectorStore, PAPER_TIME_POINTS_S
from repro.hdc.encoder import SpectrumEncoder
from repro.hdc.spaces import HDSpace
from repro.ms.vectorize import BinningConfig
from repro.experiments import iprg2012_like

FDR = 0.01
DIM = 2048

# --- 1. device characterisation: dense hypervector storage ----------
print("== MLC storage characterisation (Figure 7) ==")
rng = np.random.default_rng(0)
hvs = (rng.integers(0, 2, size=(32, DIM), dtype=np.int8) * 2 - 1)
for bits in (1, 2, 3):
    store = HypervectorStore(bits, seed=bits)
    store.write(hvs)
    ber = store.read(PAPER_TIME_POINTS_S["after_1day"]).bit_error_rate
    print(f"  {bits} bit(s)/cell: BER after 1 day = {ber:6.2%} "
          f"(capacity {bits}x vs SLC)")

# --- 2. index + search on the simulated accelerator ------------------
print("\n== OMS on the simulated accelerator ==")
workload = iprg2012_like(scale=0.25)
library = append_decoys(workload.references, decoy_factory_for(workload), seed=5)
space_config = HDSpaceConfig(dim=DIM, num_levels=16, id_precision_bits=3, seed=3)

accelerator = OmsAccelerator(
    config=AcceleratorConfig(seed=11),
    space_config=space_config,
    store_query_hypervectors=True,  # queries take the 3 bits/cell round trip
)
searcher = accelerator.build_searcher(library)
result = searcher.search(workload.queries)
accepted = grouped_fdr(result.psms, FDR)
rram_ids = {psm.peptide_key for psm in accepted if psm.peptide_key}
correct = sum(
    1 for psm in accepted if workload.truth.get(psm.query_id) == psm.peptide_key
)
print(f"  in-RRAM pipeline : {len(rram_ids)} peptides "
      f"({correct}/{len(accepted)} accepted PSMs correct)")
print(f"  encoder activity : {accelerator.im_encoder.stats}")
print(f"  search activity  : {accelerator.backend.stats}")

# --- 3. exact digital reference --------------------------------------
encoder = SpectrumEncoder(HDSpace(space_config), BinningConfig())
digital = HDOmsSearcher(encoder, library, backend=PackedBackend())
digital_accepted = grouped_fdr(digital.search(workload.queries).psms, FDR)
digital_ids = {psm.peptide_key for psm in digital_accepted if psm.peptide_key}
shared = rram_ids & digital_ids
print(f"  exact digital    : {len(digital_ids)} peptides; "
      f"{len(shared)} shared with RRAM path "
      f"({len(shared) / max(len(digital_ids), 1):.0%} agreement)")

# --- 4. modelled performance at paper scale ---------------------------
print("\n== Modelled performance at 16k x 1M scale (Figure 12) ==")
for name, value in speedups_vs_this_work(PAPER_IPRG2012_SHAPE).items():
    print(f"  this work is {value:6.1f}x faster than {name}")
for name, value in energy_improvements(PAPER_IPRG2012_SHAPE).items():
    print(f"  energy improvement vs ANN-SoLo CPU — {name}: {value:,.2f}x")
