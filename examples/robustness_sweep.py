#!/usr/bin/env python
"""HD robustness sweep: how much memory error can the search absorb?

Reproduces the Figure 11 experiment at a custom scale and adds the
ground-truth view a synthetic workload makes possible: not just *how
many* peptides pass the FDR filter at each bit error rate, but how many
of them are actually correct.

Run:  python examples/robustness_sweep.py
"""

from repro.experiments import run_fig11, iprg2012_like

workload = iprg2012_like(scale=0.4)

result = run_fig11(
    workload=workload,
    dim=4096,
    bers=(0.0015, 0.01, 0.05, 0.10, 0.20, 0.30),
    id_precisions=(1, 2, 3),
    seed=21,
)
print(result.render())

print(
    "\nReading: identifications hold roughly flat up to ~10% BER — the "
    "error level 3-bit/cell MLC storage reaches after a day (Figure 7) "
    "— then fall off; multi-bit ID hypervectors buy extra margin. "
    "This is the co-design argument of the paper: dense-but-noisy "
    "memory is usable because HD absorbs the noise."
)
