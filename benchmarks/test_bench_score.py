"""Bench: zero-copy threaded scoring vs per-worker-copy multiprocessing.

The tentpole claim of ``repro.exec``: scoring shards through one
shared-memory arena with a thread pool (GIL-releasing XOR/popcount
kernels) beats the per-worker-copy multiprocessing architecture, where
every worker materialises its own copy of the shard payload in a fresh
interpreter (``spawn`` — the portable start method and the memory model
of the pre-arena design: N workers, N copies of the index).

Two timings are taken at batch 256:

* **cold** — stand the executor up and score one batch (what an index
  reload or CLI run pays).  The per-worker-copy pool pays interpreter
  spawn + payload pickling per worker; the arena pays one ``memcpy``
  into shared memory.  This is the gated headline number.
* **warm** — steady-state per-batch scoring with everything started.
  Gated loosely and core-aware (on few-core runners both modes are
  serialised onto the same ALUs, so only IPC avoidance separates them).

Parity is asserted on every scored array before timing, so the bench
doubles as a cross-executor correctness gate.  Results append to
``benchmarks/results/BENCH_score.json`` in the same trajectory format
as ``BENCH_encode.json`` (one entry per run; gitignored).
``REPRO_BENCH_SCALE`` (default 1.0) scales the library size for CI
smoke.  The RSS probe records how little the thread mode adds over the
single-process footprint (the per-worker-copy design adds ~N x shard
bytes instead).
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

import numpy as np

from repro.exec import SharedShardArena, ShardScorer, ThreadShardExecutor
from repro.exec.pool import arena_shard_payload

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_score.json"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

BATCH = 256
DIM = 4096
NUM_ROWS = max(1024, int(8192 * BENCH_SCALE))
NUM_SHARDS = 2
NUM_WORKERS = 2
TIMING_ROUNDS = 2

#: Cold gate: arena + threads must beat spawn + per-worker copies by
#: this factor when standing up and scoring one batch.
MIN_COLD_SPEEDUP = 1.5

#: Warm (steady-state) gate by core count.  With >= 4 cores both modes
#: parallelise, so the thread mode's edge is the avoided per-task IPC;
#: on 1-2 core runners the same ALUs serve both and the floor only
#: guards against the thread path regressing below the process path.
MIN_WARM_SPEEDUP = 1.1 if (os.cpu_count() or 1) >= 4 else 0.8


def _library(seed: int = 17):
    rng = np.random.default_rng(seed)
    packed = rng.integers(0, 256, size=(NUM_ROWS, DIM // 8), dtype=np.uint8)
    masses = np.sort(rng.uniform(300.0, 1500.0, NUM_ROWS))
    charges = rng.integers(2, 4, NUM_ROWS).astype(np.int64)
    return packed, masses, charges


def _queries(seed: int = 29):
    rng = np.random.default_rng(seed)
    query_hvs = rng.choice(np.array([-1, 1], dtype=np.int8), size=(BATCH, DIM))
    query_masses = rng.uniform(300.0, 1500.0, BATCH)
    query_charges = rng.integers(2, 4, BATCH).astype(np.int64)
    # Full-coverage windows: every row of the shard is scored, which is
    # the regime where kernel throughput (not windowing) dominates.
    return query_hvs, query_masses, query_charges, 1e9


def _bounds():
    base, extra = divmod(NUM_ROWS, NUM_SHARDS)
    bounds, start = [], 0
    for shard in range(NUM_SHARDS):
        stop = start + base + (1 if shard < extra else 0)
        bounds.append((start, stop))
        start = stop
    return tuple(bounds)


def _setup_dict(spec=None):
    return {
        "spec": spec,
        "dim": DIM,
        "backend": "packed",
        "charge_aware": True,
        "bounds": _bounds(),
        "ann": None,
        "ann_provenance": None,
        "score_block_rows": None,
    }


def _tasks():
    query_hvs, query_masses, query_charges, half_width = _queries()
    return [
        (shard_id, query_hvs, query_masses, query_charges, half_width)
        for shard_id in range(NUM_SHARDS)
    ]


# ----------------------------------------------------------------------
# per-worker-copy baseline (module-level for spawn picklability)
# ----------------------------------------------------------------------

_BASELINE_STATE = {}


def _baseline_init(payloads):
    """Worker initializer of the copy-per-worker architecture: every
    worker holds its own private copy of every shard payload."""
    _BASELINE_STATE["scorers"] = {
        payload["shard_id"]: ShardScorer(payload) for payload in payloads
    }


def _baseline_score(task):
    scorer = _BASELINE_STATE["scorers"][task[0]]
    return (task[0],) + scorer.score_batch(*task[1:])


def _run_baseline_cold(payloads, tasks):
    """Spawn pool + per-worker payload copies + one scored batch."""
    context = multiprocessing.get_context("spawn")
    pool = context.Pool(
        processes=NUM_WORKERS,
        initializer=_baseline_init,
        initargs=(payloads,),
    )
    try:
        return pool.map(_baseline_score, tasks)
    finally:
        pool.terminate()
        pool.join()


def _run_thread_cold(packed, masses, charges, tasks):
    """Arena + thread pool + one scored batch, torn down leak-free."""
    arena = SharedShardArena.create(
        {"packed": packed, "masses": masses, "charges": charges}
    )
    try:
        executor = ThreadShardExecutor(
            arena, _setup_dict(arena.spec()), NUM_WORKERS
        )
        try:
            return [result[:1] + result[2:] for result in executor.run(tasks)]
        finally:
            executor.close(timeout=5.0)
    finally:
        arena.close()


def _best_of(func, rounds=TIMING_ROUNDS):
    best, last = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        last = func()
        best = min(best, time.perf_counter() - start)
    return best, last


def _rss_mb() -> float:
    for line in open("/proc/self/status"):
        if line.startswith("VmRSS:"):
            return int(line.split()[1]) / 1024.0
    return 0.0  # pragma: no cover - non-Linux


def _append_trajectory(entry: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(entry)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_bench_score_zero_copy_vs_worker_copy(capsys):
    """Thread+arena must beat spawn+copies cold, and hold warm parity."""
    packed, masses, charges = _library()
    tasks = _tasks()
    payloads = [
        {
            "shard_id": shard_id,
            "positions": np.arange(start, stop, dtype=np.int64),
            "packed": np.array(packed[start:stop]),  # the per-worker copy
            "dim": DIM,
            "masses": np.array(masses[start:stop]),
            "charges": np.array(charges[start:stop]),
            "backend": "packed",
            "charge_aware": True,
            "ann": None,
            "ann_tables": None,
            "score_block_rows": None,
        }
        for shard_id, (start, stop) in enumerate(_bounds())
    ]

    rss_before = _rss_mb()

    # -- cold: executor stand-up + one batch, both architectures -------
    thread_cold_seconds, thread_results = _best_of(
        lambda: _run_thread_cold(packed, masses, charges, tasks)
    )
    rss_after_thread = _rss_mb()
    process_cold_seconds, process_results = _best_of(
        lambda: _run_baseline_cold(payloads, tasks)
    )

    # Parity across executors before any gate fires.
    for result_t, result_p in zip(thread_results, process_results):
        assert result_t[0] == result_p[0]
        for column in range(1, 7):
            np.testing.assert_array_equal(result_t[column], result_p[column])

    # -- warm: steady-state batch scoring, everything started ----------
    arena = SharedShardArena.create(
        {"packed": packed, "masses": masses, "charges": charges}
    )
    executor = ThreadShardExecutor(arena, _setup_dict(arena.spec()), NUM_WORKERS)
    context = multiprocessing.get_context("spawn")
    pool = context.Pool(
        processes=NUM_WORKERS, initializer=_baseline_init, initargs=(payloads,)
    )
    try:
        executor.run(tasks)  # build scorers outside the timed region
        pool.map(_baseline_score, tasks)
        thread_warm_seconds, _ = _best_of(lambda: executor.run(tasks), rounds=3)
        process_warm_seconds, _ = _best_of(
            lambda: pool.map(_baseline_score, tasks), rounds=3
        )
        arena_mb = arena.nbytes / (1024.0 * 1024.0)
    finally:
        pool.terminate()
        pool.join()
        executor.close(timeout=5.0)
        arena.close()

    cold_speedup = process_cold_seconds / max(thread_cold_seconds, 1e-12)
    warm_speedup = process_warm_seconds / max(thread_warm_seconds, 1e-12)
    queries_per_second = BATCH / max(thread_warm_seconds, 1e-12)
    rss_extra_mb = max(0.0, rss_after_thread - rss_before)

    _append_trajectory(
        {
            "bench": "score_zero_copy",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "batch": BATCH,
            "dim": DIM,
            "num_rows": NUM_ROWS,
            "num_shards": NUM_SHARDS,
            "num_workers": NUM_WORKERS,
            "cpu_count": os.cpu_count() or 1,
            "process_cold_seconds": round(process_cold_seconds, 6),
            "thread_cold_seconds": round(thread_cold_seconds, 6),
            "process_warm_seconds": round(process_warm_seconds, 6),
            "thread_warm_seconds": round(thread_warm_seconds, 6),
            "speedup": round(cold_speedup, 2),
            "warm_speedup": round(warm_speedup, 2),
            "queries_per_second": round(queries_per_second, 1),
            "arena_mb": round(arena_mb, 2),
            "rss_extra_mb": round(rss_extra_mb, 2),
        }
    )
    with capsys.disabled():
        print(
            f"\n[bench-score] batch {BATCH} @ D={DIM}, n={NUM_ROWS}: "
            f"cold copy-pool {1000 * process_cold_seconds:.0f} ms vs "
            f"arena-threads {1000 * thread_cold_seconds:.0f} ms "
            f"({cold_speedup:.1f}x); warm {1000 * process_warm_seconds:.1f} "
            f"vs {1000 * thread_warm_seconds:.1f} ms ({warm_speedup:.2f}x, "
            f"{queries_per_second:.0f} q/s, +{rss_extra_mb:.1f} MB RSS)"
        )

    assert cold_speedup >= MIN_COLD_SPEEDUP, (
        f"zero-copy thread scoring only {cold_speedup:.2f}x the "
        f"per-worker-copy pool cold (need >= {MIN_COLD_SPEEDUP}x)"
    )
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm thread scoring regressed to {warm_speedup:.2f}x the warm "
        f"process pool (floor {MIN_WARM_SPEEDUP}x on "
        f"{os.cpu_count() or 1} cores)"
    )
    # Thread workers share the arena: their footprint must stay a small
    # fraction of the single-process baseline (the per-worker-copy
    # design pays ~NUM_WORKERS x the shard bytes instead).  Generous
    # slack for allocator noise on tiny CI workloads.
    assert rss_extra_mb <= max(64.0, 0.2 * rss_before + 2.0 * arena_mb), (
        f"thread-mode executor added {rss_extra_mb:.1f} MB RSS over the "
        f"{rss_before:.1f} MB single-process baseline"
    )


def test_bench_block_tiling_parity_and_throughput(capsys):
    """Cache-tiled scoring must be bit-identical; throughput recorded."""
    packed, masses, charges = _library()
    query_hvs, query_masses, query_charges, half_width = _queries()
    arena = SharedShardArena.create(
        {"packed": packed, "masses": masses, "charges": charges}
    )
    try:
        untiled = dict(_setup_dict(arena.spec()), score_block_rows=0)
        tiled = dict(_setup_dict(arena.spec()), score_block_rows=None)
        scorer_untiled = ShardScorer(arena_shard_payload(arena, untiled, 0))
        scorer_tiled = ShardScorer(arena_shard_payload(arena, tiled, 0))
        task = (query_hvs, query_masses, query_charges, half_width)
        baseline = scorer_untiled.score_batch(*task)
        blocked = scorer_tiled.score_batch(*task)
        for column in range(6):
            np.testing.assert_array_equal(baseline[column], blocked[column])
        untiled_seconds, _ = _best_of(
            lambda: scorer_untiled.score_batch(*task), rounds=3
        )
        tiled_seconds, _ = _best_of(
            lambda: scorer_tiled.score_batch(*task), rounds=3
        )
    finally:
        arena.close()
    with capsys.disabled():
        print(
            f"\n[bench-score] block tiling: untiled "
            f"{1000 * untiled_seconds:.1f} ms, auto-tiled "
            f"{1000 * tiled_seconds:.1f} ms "
            f"({untiled_seconds / max(tiled_seconds, 1e-12):.2f}x)"
        )
    # Tiling is a cache optimisation: identical results, and it must
    # never cost more than a modest constant factor even when the
    # working set already fits in cache.
    assert tiled_seconds <= untiled_seconds * 1.5
