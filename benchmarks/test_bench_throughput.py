"""Bench: software search-backend throughput (supplementary).

Not a paper figure — this measures the repository's own software
backends (dense BLAS, packed XOR/popcount, batched dense) so regressions
in the hot path are caught, and the relative cost of the digital paths
can be compared against the analytical model in ``accelerator/perf.py``.

``REPRO_BENCH_SCALE`` (a float, default 1.0) scales the workload; CI's
smoke job sets it well below 1 so the benchmarks assert behaviour
quickly rather than measure steady-state throughput.
"""

import os

import pytest

from repro.hdc.encoder import SpectrumEncoder
from repro.hdc.spaces import HDSpace, HDSpaceConfig
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.ms.vectorize import BinningConfig
from repro.oms.batch import BatchedHDOmsSearcher
from repro.oms.search import DenseBackend, HDOmsSearcher, PackedBackend

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="module")
def throughput_setup():
    workload = build_workload(
        WorkloadConfig(
            name="throughput",
            num_references=max(50, int(1500 * BENCH_SCALE)),
            num_queries=max(10, int(100 * BENCH_SCALE)),
            seed=71,
        )
    )
    binning = BinningConfig()
    space = HDSpace(
        HDSpaceConfig(
            dim=4096,
            num_bins=binning.num_bins,
            num_levels=32,
            id_precision_bits=3,
            seed=9,
        )
    )
    encoder = SpectrumEncoder(space, binning)
    return workload, encoder


def test_throughput_dense_backend(benchmark, throughput_setup):
    workload, encoder = throughput_setup
    searcher = HDOmsSearcher(
        encoder, workload.references, backend=DenseBackend()
    )
    result = benchmark.pedantic(
        searcher.search, args=(workload.queries,), rounds=2, iterations=1
    )
    assert len(result.psms) > 0


def test_throughput_packed_backend(benchmark, throughput_setup):
    workload, encoder = throughput_setup
    searcher = HDOmsSearcher(
        encoder, workload.references, backend=PackedBackend()
    )
    result = benchmark.pedantic(
        searcher.search, args=(workload.queries,), rounds=2, iterations=1
    )
    assert len(result.psms) > 0


def test_throughput_batched_searcher(benchmark, throughput_setup):
    workload, encoder = throughput_setup
    searcher = BatchedHDOmsSearcher(encoder, workload.references)
    result = benchmark.pedantic(
        searcher.search, args=(workload.queries,), rounds=2, iterations=1
    )
    assert len(result.psms) > 0
