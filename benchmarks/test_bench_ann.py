"""Bench: Hamming-LSH candidate prefilter vs brute-force window scoring.

The prefilter's pitch is sublinear per-query work: instead of scoring
every library row inside the precursor window (open search windows span
a large fraction of the library), the query probes ``num_tables`` LSH
tables and exactly re-ranks only the ``candidate_budget`` rows that
collide most often.  This benchmark builds a >= 50k-row synthetic
library of random bipolar hypervectors, issues noisy-copy queries (5%
of components flipped — the regime the prefilter is designed for, see
``docs/ann-tuning.md``), and measures:

* a recall-vs-speedup curve over ``candidate_budget`` (appended to
  ``benchmarks/results/BENCH_ann.json`` as a per-machine trajectory);
* per-query cost *flattening*: growing the library 10x multiplies the
  brute-force cost ~10x but the ANN cost far less, because the scored
  shortlist stays capped at the budget.

Asserted: >= 3x speedup at >= 0.99 top-1 recall on the full-size
library, and ANN per-query growth at most half the brute-force growth
across the 10x size step.  ``REPRO_BENCH_SCALE`` (default 1.0) scales
the library for CI smoke; the tiny recall sanity check at the bottom is
scale-independent.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ann import AnnConfig, CandidatePrefilter, HammingLSHIndex
from repro.hdc.packing import pack_bipolar

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_ann.json"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
DIM = 1024
LIBRARY_ROWS = max(2_000, int(50_000 * BENCH_SCALE))
NUM_QUERIES = 64
NOISE_FRACTION = 0.05
HALF_WIDTH = 500.0
MASS_RANGE = (700.0, 3_000.0)
BUDGET_CURVE = (64, 128, 256, 512)
DEFAULT_BUDGET = 256
TIMING_ROUNDS = 3
MIN_SPEEDUP = 3.0
MIN_RECALL = 0.99


class _SyntheticLibrary:
    """Random bipolar library + the exact window-scoring baseline."""

    def __init__(self, num_rows: int, seed: int) -> None:
        rng = np.random.default_rng(seed)
        self.hvs = (
            rng.integers(0, 2, size=(num_rows, DIM), dtype=np.int8) * 2 - 1
        ).astype(np.int8)
        self.masses = rng.uniform(*MASS_RANGE, size=num_rows)
        self.charges = np.full(num_rows, 2, dtype=np.int64)
        self.order = np.argsort(self.masses, kind="stable")
        self.sorted_masses = self.masses[self.order]
        # One float32 copy reused by both paths, so the comparison
        # times the schedules, not dtype conversions.
        self.hvs_f32 = self.hvs.astype(np.float32)
        self.sorted_hvs_f32 = self.hvs_f32[self.order]
        self.packed = pack_bipolar(self.hvs)

    def noisy_queries(self, count: int, seed: int):
        """(query_hv, query_mass, true_row) triples: 5%-flipped copies."""
        rng = np.random.default_rng(seed)
        rows = rng.choice(len(self.masses), size=count, replace=False)
        queries = []
        for row in rows:
            hv = self.hvs[row].copy()
            flips = rng.choice(
                DIM, size=max(1, int(NOISE_FRACTION * DIM)), replace=False
            )
            hv[flips] = -hv[flips]
            queries.append((hv, float(self.masses[row]), int(row)))
        return queries

    def brute_top1(self, query_hv: np.ndarray, mass: float) -> int:
        """Exact argmax over the precursor window (global row index)."""
        low = np.searchsorted(self.sorted_masses, mass - HALF_WIDTH, "left")
        high = np.searchsorted(self.sorted_masses, mass + HALF_WIDTH, "right")
        scores = self.sorted_hvs_f32[low:high] @ query_hv.astype(np.float32)
        return int(self.order[low + int(np.argmax(scores))])


def _build_prefilter(library: _SyntheticLibrary, budget: int):
    config = AnnConfig(candidate_budget=budget, ann_threshold=0)
    lsh = HammingLSHIndex.build(library.packed, DIM, config)
    return CandidatePrefilter(
        lsh, library.masses, library.charges, charge_aware=True
    )


def _ann_top1(library, prefilter, query_hv: np.ndarray, mass: float):
    """(top-1 row, scored rows) through the prefilter + exact re-rank."""
    selection = prefilter.select(query_hv, mass, 2, HALF_WIDTH)
    positions = selection.positions
    scores = library.hvs_f32[positions] @ query_hv.astype(np.float32)
    return int(positions[int(np.argmax(scores))]), len(positions)


def _best_of(func, rounds=TIMING_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _per_query_seconds(func, queries) -> float:
    def _run():
        for query_hv, mass, _true_row in queries:
            func(query_hv, mass)

    return _best_of(_run) / len(queries)


def _append_trajectory(entry: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(entry)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture(scope="module")
def large_library():
    return _SyntheticLibrary(LIBRARY_ROWS, seed=101)


def test_bench_ann_recall_speedup_curve(large_library, capsys):
    """Budget sweep on the full library: recall, speedup, flattening."""
    library = large_library
    queries = library.noisy_queries(NUM_QUERIES, seed=77)
    brute_truth = [library.brute_top1(hv, mass) for hv, mass, _ in queries]
    brute_per_query = _per_query_seconds(
        lambda hv, mass: library.brute_top1(hv, mass), queries
    )
    mean_window = float(
        np.mean(
            [
                np.searchsorted(library.sorted_masses, m + HALF_WIDTH, "right")
                - np.searchsorted(library.sorted_masses, m - HALF_WIDTH, "left")
                for _, m, _ in queries
            ]
        )
    )

    curve = []
    default_row = None
    for budget in BUDGET_CURVE:
        prefilter = _build_prefilter(library, budget)
        # Recall against the brute-force argmax, computed once outside
        # the timed region.
        hits = 0
        scored_total = 0
        for (query_hv, mass, _true_row), truth in zip(queries, brute_truth):
            top1, scored = _ann_top1(library, prefilter, query_hv, mass)
            scored_total += scored
            hits += int(top1 == truth)
        ann_per_query = _per_query_seconds(
            lambda hv, mass, p=prefilter: _ann_top1(library, p, hv, mass),
            queries,
        )
        row = {
            "candidate_budget": budget,
            "recall_top1": round(hits / len(queries), 4),
            "brute_ms_per_query": round(1000 * brute_per_query, 4),
            "ann_ms_per_query": round(1000 * ann_per_query, 4),
            "speedup": round(brute_per_query / max(ann_per_query, 1e-12), 2),
            "candidate_ratio": round(
                scored_total / (len(queries) * mean_window), 4
            ),
        }
        curve.append(row)
        if budget == DEFAULT_BUDGET:
            default_row = row

    # 10x flattening: per-query cost growth across a 10x library step.
    small = _SyntheticLibrary(max(200, LIBRARY_ROWS // 10), seed=102)
    small_queries = small.noisy_queries(NUM_QUERIES, seed=78)
    small_brute = _per_query_seconds(
        lambda hv, mass: small.brute_top1(hv, mass), small_queries
    )
    small_prefilter = _build_prefilter(small, DEFAULT_BUDGET)
    small_ann = _per_query_seconds(
        lambda hv, mass: _ann_top1(small, small_prefilter, hv, mass),
        small_queries,
    )
    brute_growth = brute_per_query / max(small_brute, 1e-12)
    ann_growth = default_row["ann_ms_per_query"] / max(
        1000 * small_ann, 1e-9
    )

    _append_trajectory(
        {
            "bench": "ann_prefilter",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "dim": DIM,
            "library_rows": LIBRARY_ROWS,
            "num_queries": NUM_QUERIES,
            "noise_fraction": NOISE_FRACTION,
            "mean_window_rows": round(mean_window, 1),
            "curve": curve,
            "flattening": {
                "small_rows": len(small.masses),
                "brute_growth": round(brute_growth, 2),
                "ann_growth": round(ann_growth, 2),
            },
        }
    )
    with capsys.disabled():
        print(
            f"\n[bench-ann] {LIBRARY_ROWS} rows @ D={DIM}, "
            f"mean window {mean_window:.0f} rows, "
            f"brute {default_row['brute_ms_per_query']:.3f} ms/query"
        )
        for row in curve:
            print(
                f"[bench-ann]   budget {row['candidate_budget']:>4}: "
                f"recall {row['recall_top1']:.4f}, "
                f"{row['ann_ms_per_query']:.3f} ms/query "
                f"({row['speedup']:.1f}x, ratio {row['candidate_ratio']})"
            )
        print(
            f"[bench-ann] 10x growth: brute {brute_growth:.1f}x, "
            f"ann {ann_growth:.1f}x"
        )

    assert default_row["recall_top1"] >= MIN_RECALL, (
        f"top-1 recall {default_row['recall_top1']} at budget "
        f"{DEFAULT_BUDGET} (need >= {MIN_RECALL})"
    )
    assert default_row["speedup"] >= MIN_SPEEDUP, (
        f"ANN only {default_row['speedup']:.2f}x brute force at budget "
        f"{DEFAULT_BUDGET} (need >= {MIN_SPEEDUP}x)"
    )
    assert ann_growth <= 0.5 * brute_growth, (
        f"ANN per-query cost grew {ann_growth:.1f}x across the 10x "
        f"library step vs {brute_growth:.1f}x brute force — not sublinear"
    )


def test_bench_ann_recall_sanity():
    """Tiny scale-independent recall gate for CI bench smoke."""
    library = _SyntheticLibrary(2_000, seed=103)
    queries = library.noisy_queries(40, seed=79)
    prefilter = _build_prefilter(library, DEFAULT_BUDGET)
    hits = sum(
        1
        for query_hv, mass, _true_row in queries
        if _ann_top1(library, prefilter, query_hv, mass)[0]
        == library.brute_top1(query_hv, mass)
    )
    recall = hits / len(queries)
    assert recall >= MIN_RECALL, f"sanity recall {recall} < {MIN_RECALL}"
