"""Bench: build-once/search-many amortisation and shard scaling.

The paper's economics depend on paying library encoding once and
serving many query batches from the persisted index.  These benchmarks
measure (a) the one-time index build, (b) an index-backed search that
must skip encoding entirely — asserted by *call counting*, not timing,
so the check is deterministic — and (c) sharded search at 1/2/4 shards
with PSM parity against the single-process searcher.

``REPRO_BENCH_SCALE`` (default 1.0) scales the workload for CI smoke.
"""

import os

import numpy as np
import pytest

from repro.hdc.encoder import SpectrumEncoder
from repro.hdc.spaces import HDSpace, HDSpaceConfig
from repro.index import LibraryIndex, ShardedSearcher
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.ms.vectorize import BinningConfig
from repro.oms.search import HDOmsSearcher

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


class CountingEncoder:
    """Delegating encoder that counts how often encoding is invoked."""

    def __init__(self, encoder: SpectrumEncoder) -> None:
        self._encoder = encoder
        self.space = encoder.space
        self.binning = encoder.binning
        self.encode_calls = 0
        self.encode_batch_calls = 0

    def encode(self, spectrum):
        self.encode_calls += 1
        return self._encoder.encode(spectrum)

    def encode_batch(self, spectra):
        self.encode_batch_calls += 1
        return self._encoder.encode_batch(spectra)


@pytest.fixture(scope="module")
def bench_setup(tmp_path_factory):
    workload = build_workload(
        WorkloadConfig(
            name="bench-index",
            num_references=max(60, int(900 * BENCH_SCALE)),
            num_queries=max(12, int(50 * BENCH_SCALE)),
            seed=23,
        )
    )
    binning = BinningConfig()
    space_config = HDSpaceConfig(
        dim=2048, num_bins=binning.num_bins, num_levels=16, seed=5
    )
    encoder = SpectrumEncoder(HDSpace(space_config), binning)
    index = LibraryIndex.build(
        workload.references, encoder=encoder, source="bench"
    )
    path = index.save(tmp_path_factory.mktemp("bench-index") / "library.npz")
    baseline = HDOmsSearcher(encoder, workload.references).search(
        workload.queries
    )
    return workload, binning, space_config, encoder, index, path, baseline


def test_bench_index_build(benchmark, bench_setup):
    """One-time cost: chunked encode of the whole library + packing."""
    workload, binning, space_config, _encoder, _index, _path, _base = bench_setup
    index = benchmark.pedantic(
        LibraryIndex.build,
        args=(workload.references,),
        kwargs={"space_config": space_config, "binning": binning},
        rounds=1,
        iterations=1,
    )
    assert index.num_references > 0


def test_bench_search_from_index_skips_encoding(benchmark, bench_setup):
    """Index-backed search never re-encodes the library (call-counted)."""
    workload, _binning, _space, _encoder, _index, path, baseline = bench_setup
    loaded = LibraryIndex.load(path)
    counting = CountingEncoder(loaded.make_encoder())

    def load_and_search():
        searcher = HDOmsSearcher.from_index(loaded, encoder=counting)
        return searcher.search(workload.queries)

    result = benchmark.pedantic(load_and_search, rounds=2, iterations=1)
    # Reference encoding must have been skipped entirely: the only
    # encoder activity is one `encode` per preprocessed query.
    assert counting.encode_batch_calls == 0
    assert counting.encode_calls > 0
    assert result.psms == baseline.psms


def test_bench_build_once_search_many_speedup(bench_setup, capsys):
    """Amortisation: load+search must beat encode-from-scratch+search."""
    import time

    workload, _binning, _space, encoder, _index, path, baseline = bench_setup

    start = time.perf_counter()
    fresh = HDOmsSearcher(encoder, workload.references)
    fresh_result = fresh.search(workload.queries)
    fresh_seconds = time.perf_counter() - start

    start = time.perf_counter()
    loaded = LibraryIndex.load(path)
    amortised = HDOmsSearcher.from_index(loaded)
    amortised_result = amortised.search(workload.queries)
    amortised_seconds = time.perf_counter() - start

    assert amortised_result.psms == fresh_result.psms == baseline.psms
    with capsys.disabled():
        print(
            f"\n[bench-index] fresh build+search {fresh_seconds:.3f}s, "
            f"index load+search {amortised_seconds:.3f}s "
            f"({fresh_seconds / max(amortised_seconds, 1e-9):.1f}x)"
        )
    # The whole point of the index: skipping encoding must win.
    assert amortised_seconds < fresh_seconds


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_bench_sharded_scaling(benchmark, bench_setup, num_shards):
    """Shard fan-out keeps PSM parity at every shard count."""
    workload, _binning, _space, _encoder, index, _path, baseline = bench_setup
    with ShardedSearcher(index, num_shards=num_shards) as searcher:
        searcher.search(workload.queries)  # warm the pool + shard caches
        result = benchmark.pedantic(
            searcher.search, args=(workload.queries,), rounds=2, iterations=1
        )
    assert result.psms == baseline.psms


def test_bench_mmap_load_is_cheap(benchmark, bench_setup):
    """Loading the persisted index is metadata-bound, not data-bound."""
    _wl, _binning, _space, _encoder, index, path, _base = bench_setup
    loaded = benchmark.pedantic(
        LibraryIndex.load, args=(path,), rounds=3, iterations=1
    )
    assert isinstance(loaded.packed, np.memmap)
    assert loaded.num_references == index.num_references
