"""Bench: regenerate Table 1 (OMS workload settings)."""

from conftest import run_once

from repro.experiments import run_table1


def test_table1_workload_settings(benchmark, record):
    result = run_once(benchmark, run_table1, scale=0.5)
    record(result)
    queries = result.column("queries")
    references = result.column("references")
    # Same structure as the paper's Table 1: two datasets, the second
    # with both a larger query set and a larger library.
    assert len(result.rows) == 2
    assert queries[1] > queries[0]
    assert references[1] > references[0]
    # Library >= 10x query count, as in both paper datasets.
    assert all(r >= 5 * q for q, r in zip(queries, references))
    # The open window must widen the candidate set by orders of
    # magnitude relative to the standard window (the paper's Section 1
    # motivation).
    open_candidates = result.column("open_cands")
    standard_candidates = result.column("std_cands")
    assert all(o > 20 * max(s, 0.05) for o, s in zip(open_candidates, standard_candidates))
