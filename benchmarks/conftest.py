"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table/figure: it runs the
experiment once under pytest-benchmark timing, prints the rendered
rows/series, saves them under ``benchmarks/results/``, and asserts the
reproduced *shape* (orderings, monotonic trends, crossovers) — not
absolute numbers, since the substrate is a simulator rather than the
authors' chip and datasets.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record():
    """Print an ExperimentResult and persist it for EXPERIMENTS.md."""

    def _record(result):
        text = result.render()
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print("\n" + text)
        return result

    return _record


def run_once(benchmark, func, **kwargs):
    """Run an experiment exactly once under benchmark timing."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
