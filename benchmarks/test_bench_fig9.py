"""Bench: regenerate Figure 9 (computation errors vs. activated rows)."""

import numpy as np
from conftest import run_once

from repro.experiments import run_fig9_encoding, run_fig9_search


def _mean(values):
    return float(np.mean(values))


def test_fig9a_encoding_errors(benchmark, record):
    result = run_once(benchmark, run_fig9_encoding, dim=1024, num_spectra=12)
    record(result)
    for column in ("1_bit_per_cell", "2_bits_per_cell", "3_bits_per_cell"):
        series = result.column(column)
        # Error grows with activated rows (compare low-row vs high-row
        # halves; individual points are noisy on a simulator seed).
        assert _mean(series[-3:]) > _mean(series[:2])
    # More bits per cell -> more encoding error, on average.
    assert _mean(result.column("3_bits_per_cell")) > _mean(
        result.column("1_bit_per_cell")
    )
    # At the paper's operating point (64 rows) the 3-bit error stays in
    # the regime HD tolerates (Figure 11: up to ~10-20%).
    row_64 = next(row for row in result.rows if row[0] == 64)
    assert row_64[3] < 20.0


def test_fig9b_search_errors(benchmark, record):
    result = run_once(benchmark, run_fig9_search, num_mvms=30)
    record(result)
    for column in ("1_bit_per_cell", "2_bits_per_cell", "3_bits_per_cell"):
        series = result.column(column)
        assert series[-1] > series[0]
        # The paper's NRMSE stays within ~0.02-0.12 across the sweep.
        assert all(0.005 < value < 0.2 for value in series)
    assert _mean(result.column("3_bits_per_cell")) > _mean(
        result.column("1_bit_per_cell")
    )
