"""Bench: streaming store ingest keeps peak RSS bounded.

The tentpole claim of ``repro.store``: :func:`repro.store.build_store`
fed by :func:`repro.ms.iter_spectra` ingests a library while holding at
most ``segment_rows`` spectra (plus one encode chunk), so peak RSS
stays roughly flat no matter how large the library grows — whereas the
monolithic path (``list(iter_spectra(...))`` +
``LibraryIndex.build``) materializes every spectrum before encoding
starts.

Three child interpreters measure it cleanly (RSS deltas inside one
process are polluted by allocator retention):

* **baseline** — import the stack, build the encoder's HD space, and
  *iterate* the MSP file one spectrum at a time without keeping any.
  Peak RSS here is the floor every ingest pays.
* **monolithic** — parse the full spectrum list, then
  ``LibraryIndex.build`` it.
* **streaming** — ``build_store`` straight off the file iterator.

The gate is self-calibrating: streaming's RSS *above the baseline
floor* must stay under half of monolithic's when the monolithic
overhead is substantial (>= 96 MB), and under 0.9x of it at CI smoke
scale where both overheads are small and noisy.  Row-count parity
between the two builds is asserted so the memory win can never come
from silently ingesting less.  ``REPRO_BENCH_SCALE`` (default 1.0)
scales the library size.  Results append to
``benchmarks/results/BENCH_store.json`` (one entry per run;
gitignored).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_store.json"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

DIM = 4096
NUM_REFERENCES = max(4000, int(30000 * BENCH_SCALE))
SEGMENT_ROWS = max(512, NUM_REFERENCES // 8)
PEAKS_PER_SPECTRUM = 120

#: Below this monolithic overhead the absolute numbers are too small
#: for a tight ratio; the gate relaxes from 0.5x to 0.9x.
CALIBRATION_FLOOR_MB = 96.0


def _spectra():
    """Generate the synthetic library lazily (the writer streams it)."""
    from repro.ms.spectrum import Spectrum

    rng = np.random.default_rng(41)
    for i in range(NUM_REFERENCES):
        mz = np.sort(rng.uniform(150.0, 1400.0, PEAKS_PER_SPECTRUM))
        intensity = rng.uniform(0.05, 1.0, PEAKS_PER_SPECTRUM)
        yield Spectrum(
            identifier=f"ref-{i}",
            precursor_mz=float(rng.uniform(400.0, 1200.0)),
            precursor_charge=2,
            mz=mz,
            intensity=intensity,
        )


#: Child program: measure peak RSS (VmHWM) around one ingest flavor.
#: argv: mode msp_path store_root segment_rows
_CHILD = r"""
import json, sys
from pathlib import Path

from repro.hdc.spaces import HDSpace, HDSpaceConfig
from repro.hdc.encoder import SpectrumEncoder
from repro.index.library import LibraryIndex
from repro.ms import iter_spectra
from repro.ms.vectorize import BinningConfig
from repro.store import build_store

mode, msp_path, store_root, segment_rows = (
    sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])
)
binning = BinningConfig()
space_config = HDSpaceConfig(dim=%(dim)d, num_bins=binning.num_bins, seed=3)
# Every flavor pays the codebook; building it in the baseline keeps the
# reported deltas about *ingest* memory, not the HD space.
encoder = SpectrumEncoder(HDSpace(space_config), binning)

num_references = 0
segments = 0
if mode == "baseline":
    for _ in iter_spectra(msp_path):
        num_references += 1
elif mode == "monolithic":
    spectra = list(iter_spectra(msp_path))
    index = LibraryIndex.build(spectra, encoder=encoder)
    num_references = index.num_references
elif mode == "streaming":
    store = build_store(
        iter_spectra(msp_path),
        store_root,
        encoder=encoder,
        segment_rows=segment_rows,
    )
    num_references = store.num_references
    segments = store.num_segments
    store.close()
else:
    raise SystemExit(f"unknown mode {mode!r}")

hwm_kb = 0
for line in open("/proc/self/status"):
    if line.startswith("VmHWM:"):
        hwm_kb = int(line.split()[1])
        break
print(json.dumps({
    "mode": mode,
    "hwm_mb": hwm_kb / 1024.0,
    "num_references": num_references,
    "segments": segments,
}))
""" % {"dim": DIM}


def _run_child(mode: str, msp_path: Path, store_root: Path) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable,
            "-c",
            _CHILD,
            mode,
            str(msp_path),
            str(store_root),
            str(SEGMENT_ROWS),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    assert completed.returncode == 0, (
        f"{mode} child failed:\n{completed.stderr}"
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def _append_trajectory(entry: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    history.append(entry)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_streaming_ingest_bounds_peak_rss(tmp_path):
    from repro.ms import write_msp

    msp_path = tmp_path / "library.msp"
    write_msp(_spectra(), msp_path)

    started = time.perf_counter()
    baseline = _run_child("baseline", msp_path, tmp_path / "unused")
    monolithic = _run_child("monolithic", msp_path, tmp_path / "unused")
    streaming = _run_child("streaming", msp_path, tmp_path / "store")
    seconds = time.perf_counter() - started

    # The memory win must not come from ingesting fewer rows.
    assert baseline["num_references"] == NUM_REFERENCES
    assert monolithic["num_references"] == streaming["num_references"]
    assert streaming["segments"] >= 2, (
        "library must span several segments for the bound to mean anything"
    )

    mono_extra = monolithic["hwm_mb"] - baseline["hwm_mb"]
    streaming_extra = streaming["hwm_mb"] - baseline["hwm_mb"]
    assert mono_extra > 0, (
        f"monolithic build should cost memory over the iterate-only "
        f"baseline, measured {mono_extra:.1f} MB"
    )
    factor = 0.5 if mono_extra >= CALIBRATION_FLOOR_MB else 0.9
    rss_cap_mb = baseline["hwm_mb"] + factor * mono_extra
    memory_ratio = max(0.0, streaming_extra) / mono_extra

    entry = {
        "bench": "store_streaming_ingest",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "references": NUM_REFERENCES,
        "dim": DIM,
        "segment_rows": SEGMENT_ROWS,
        "segments": streaming["segments"],
        "baseline_mb": round(baseline["hwm_mb"], 2),
        "monolithic_rss_mb": round(monolithic["hwm_mb"], 2),
        "streaming_rss_mb": round(streaming["hwm_mb"], 2),
        "rss_cap_mb": round(rss_cap_mb, 2),
        "memory_ratio": round(memory_ratio, 4),
        "seconds": round(seconds, 2),
    }
    _append_trajectory(entry)
    print(
        f"\nstore ingest: {NUM_REFERENCES} refs, baseline "
        f"{baseline['hwm_mb']:.0f} MB, monolithic +{mono_extra:.0f} MB, "
        f"streaming +{streaming_extra:.0f} MB "
        f"(ratio {memory_ratio:.2f}, gate {factor:.1f}x)"
    )

    assert streaming["hwm_mb"] <= rss_cap_mb, (
        f"streaming ingest peaked at {streaming['hwm_mb']:.1f} MB, above "
        f"the {rss_cap_mb:.1f} MB cap (baseline {baseline['hwm_mb']:.1f} "
        f"+ {factor:.1f} x {mono_extra:.1f} MB monolithic overhead)"
    )
