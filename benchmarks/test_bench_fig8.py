"""Bench: regenerate Figure 8 (conductance relaxation histograms)."""

from conftest import run_once

from repro.experiments import run_fig8


def test_fig8_conductance_relaxation(benchmark, record):
    result = run_once(benchmark, run_fig8, cells_per_level=4000)
    record(result)
    rows = {(row[0], row[1]): row for row in result.rows}
    for levels in (2, 4, 8):
        fresh = rows[(levels, "during_programming")]
        day = rows[(levels, "after_1day")]
        # Distributions widen with relaxation time...
        assert day[2] > fresh[2]
        # ...and level overlap (mis-decode) grows.
        assert day[4] >= fresh[4]
    # More levels -> tighter margins -> more overlap after relaxation.
    assert (
        rows[(8, "after_1day")][4]
        > rows[(4, "after_1day")][4]
        > rows[(2, "after_1day")][4]
    )
    # Fresh programming is clean at every level count (write-verify).
    for levels in (2, 4, 8):
        assert rows[(levels, "during_programming")][4] < 1.0
