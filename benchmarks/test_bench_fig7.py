"""Bench: regenerate Figure 7 (storage bit error rate vs. time)."""

from conftest import run_once

from repro.experiments import run_fig7


def test_fig7_storage_bit_error_rate(benchmark, record):
    result = run_once(benchmark, run_fig7, num_hypervectors=64, dim=4096)
    record(result)
    ber_1 = result.column("1_bit_per_cell")
    ber_2 = result.column("2_bits_per_cell")
    ber_3 = result.column("3_bits_per_cell")
    # More bits per cell -> higher BER, at every time point.
    for one, two, three in zip(ber_1, ber_2, ber_3):
        assert one <= two <= three
    # BER grows with relaxation time (1s -> 1day) for MLC cells.
    assert ber_2[-1] > ber_2[0]
    assert ber_3[-1] > ber_3[0]
    # Paper's headline figures: SLC storage stays essentially error-free
    # while 3 bits/cell lands near ~10-14% after a day — inside the
    # error budget Figure 11 shows HD tolerating.
    assert ber_1[-1] < 1.0
    assert 5.0 < ber_3[-1] < 25.0
