"""Bench: regenerate Figure 10 (Venn diagram of identified peptides)."""

from conftest import run_once

from repro.experiments import run_fig10


def test_fig10_venn_of_identifications(benchmark, record):
    result = run_once(benchmark, run_fig10)
    record(result)
    regions = {row[0]: row[1] for row in result.rows}
    # The triple intersection dominates: most identified peptides are
    # shared by all three tools (the paper's validity argument).
    exclusive = (
        regions["only_annsolo"]
        + regions["only_hyperoms"]
        + regions["only_this_work"]
    )
    assert regions["all_three"] > 3 * exclusive
    assert result.notes["triple_overlap_fraction_of_union"] > 0.5
    # This work's total identifications are comparable to both
    # state-of-the-art baselines (within 30%).
    totals = [
        regions["total_annsolo"],
        regions["total_hyperoms"],
        regions["total_this_work"],
    ]
    assert max(totals) <= 1.3 * min(totals)
    assert all(total > 0 for total in totals)
