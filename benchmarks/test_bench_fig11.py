"""Bench: regenerate Figure 11 (HD robustness vs. bit error rate)."""

import numpy as np
from conftest import run_once

from repro.experiments import run_fig11


def test_fig11_hd_robustness(benchmark, record):
    result = run_once(benchmark, run_fig11)
    record(result)
    for precision in (1, 2, 3):
        series = result.column(f"ID_precision_{precision}bit")
        clean, at_10pct, at_20pct = series[0], series[-2], series[-1]
        # Flat up to ~10% BER: within 20% of the clean count.
        assert at_10pct >= 0.8 * clean
        # Degradation shows by 20% BER.
        assert at_20pct < clean
    # The multi-bit ID scheme identifies more than binary IDs overall
    # (paper Section 5.3.2: "enhanced performance ... multi-bit
    # hypervector scheme").
    total_1bit = float(np.sum(result.column("ID_precision_1bit")))
    total_3bit = float(np.sum(result.column("ID_precision_3bit")))
    assert total_3bit >= total_1bit
