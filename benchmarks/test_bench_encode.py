"""Bench: fused batch encoding vs the row-loop baseline.

The fused :meth:`~repro.hdc.encoder.SpectrumEncoder.encode_batch`
pipeline concatenates every peak of a batch, gathers ID/level codebook
rows with two fancy-index operations, and segment-sums per spectrum.
This benchmark races it against the *row-loop baseline* — the seed
implementation: a Python loop over spectra, each paying per-spectrum
quantisation, a per-peak Python loop stacking ID rows, and one einsum —
and asserts the fused path wins by >= 3x at batch 256.

Parity is asserted before timing, so the benchmark doubles as a
correctness gate.  Results are appended to
``benchmarks/results/BENCH_encode.json`` as a per-machine perf
trajectory (one entry per run; gitignored because the entries are
timing-dependent).
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.hdc.encoder import SpectrumEncoder, sign_with_tiebreak
from repro.hdc.spaces import HDSpace, HDSpaceConfig
from repro.ms.vectorize import BinningConfig, SparseVector, quantize_intensities
from repro.obs import get_tracer

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_encode.json"

BATCH = 256
DIM = 2048
NUM_LEVELS = 16
MAX_PEAKS = 48
TIMING_ROUNDS = 5
MIN_SPEEDUP = 3.0


def _row_loop_encode_batch(encoder: SpectrumEncoder, vectors) -> np.ndarray:
    """The seed implementation of ``encode_batch``, kept verbatim as the
    baseline: per-spectrum Python loop, per-peak ID row stacking, one
    einsum accumulator per spectrum."""
    space = encoder.space
    out = np.empty((len(vectors), space.dim), dtype=np.int8)
    for row, vector in enumerate(vectors):
        if len(vector) == 0:
            out[row] = space.tiebreak
            continue
        levels, _scale = quantize_intensities(vector.values, space.num_levels)
        ids = np.empty((len(vector), space.dim), dtype=np.int8)
        for peak, bin_index in enumerate(vector.indices.tolist()):
            ids[peak] = space.id_vector(bin_index)
        accumulator = np.einsum(
            "pd,pd->d",
            ids.astype(np.int32),
            space.level_vectors[levels].astype(np.int32),
            optimize=True,
        )
        out[row] = sign_with_tiebreak(accumulator, space.tiebreak)
    return out


def _best_of(func, rounds=TIMING_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _append_trajectory(entry: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(entry)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_bench_encode_fused_vs_row_loop(capsys):
    """Fused batch encode must be bit-identical and >= 3x the row loop."""
    binning = BinningConfig()
    space = HDSpace(
        HDSpaceConfig(
            dim=DIM, num_bins=binning.num_bins, num_levels=NUM_LEVELS, seed=7
        )
    )
    encoder = SpectrumEncoder(space, binning)
    rng = np.random.default_rng(21)
    vectors = []
    for _ in range(BATCH):
        num_peaks = int(rng.integers(8, MAX_PEAKS + 1))
        indices = np.sort(
            rng.choice(binning.num_bins, size=num_peaks, replace=False)
        ).astype(np.int64)
        values = rng.gamma(2.0, 100.0, size=num_peaks)
        vectors.append(SparseVector(indices, values, binning.num_bins))

    # Warm both paths: materialises the ID bank for the fused pipeline
    # and the per-bin cache for the baseline, so neither pays one-time
    # codebook generation inside the timed region.
    fused = encoder.encode_batch(vectors)
    baseline = _row_loop_encode_batch(encoder, vectors)
    assert np.array_equal(fused, baseline), "fused encode must be bit-identical"

    fused_seconds = _best_of(lambda: encoder.encode_batch(vectors))
    baseline_seconds = _best_of(lambda: _row_loop_encode_batch(encoder, vectors))
    speedup = baseline_seconds / max(fused_seconds, 1e-12)
    spectra_per_second = BATCH / max(fused_seconds, 1e-12)

    _append_trajectory(
        {
            "bench": "encode_batch",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "batch": BATCH,
            "dim": DIM,
            "num_levels": NUM_LEVELS,
            "mean_peaks": float(np.mean([len(v) for v in vectors])),
            "row_loop_seconds": round(baseline_seconds, 6),
            "fused_seconds": round(fused_seconds, 6),
            "speedup": round(speedup, 2),
            "spectra_per_second": round(spectra_per_second, 1),
        }
    )
    with capsys.disabled():
        print(
            f"\n[bench-encode] batch {BATCH} @ D={DIM}: "
            f"row-loop {1000 * baseline_seconds:.2f} ms, "
            f"fused {1000 * fused_seconds:.2f} ms "
            f"({speedup:.1f}x, {spectra_per_second:.0f} spectra/s)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"fused encode_batch only {speedup:.2f}x the row-loop baseline "
        f"(need >= {MIN_SPEEDUP}x at batch {BATCH})"
    )


# ----------------------------------------------------------------------
# disabled-tracer overhead guard (repro.obs)
# ----------------------------------------------------------------------

#: Disabled span() calls timed per round (one per encode_batch in prod).
TRACER_PROBE_CALLS = 2000

#: Ceiling on (one disabled span) / (one encode_batch) — the obs layer's
#: "near-zero overhead when disabled" contract, enforced.
MAX_DISABLED_OVERHEAD = 0.02


def test_bench_disabled_tracer_overhead(capsys):
    """A disabled ``tracer.span`` must cost < 2% of one ``encode_batch``.

    ``encode_batch`` opens exactly one ``encode.batch`` span per call,
    so the instrumentation tax of the hot path with tracing off is one
    disabled ``span()`` (an attribute check plus the caller's kwargs
    dict).  This guard races that no-op against the encode work it
    shadows and fails if the disabled path ever grows real cost.
    """
    binning = BinningConfig()
    space = HDSpace(
        HDSpaceConfig(
            dim=1024, num_bins=binning.num_bins, num_levels=NUM_LEVELS, seed=7
        )
    )
    encoder = SpectrumEncoder(space, binning)
    rng = np.random.default_rng(33)
    vectors = []
    for _ in range(128):
        num_peaks = int(rng.integers(8, MAX_PEAKS + 1))
        indices = np.sort(
            rng.choice(binning.num_bins, size=num_peaks, replace=False)
        ).astype(np.int64)
        values = rng.gamma(2.0, 100.0, size=num_peaks)
        vectors.append(SparseVector(indices, values, binning.num_bins))

    tracer = get_tracer()
    assert not tracer.enabled, "benchmarks expect the global tracer off"
    encoder.encode_batch(vectors)  # warm the ID bank outside the timing
    encode_seconds = _best_of(lambda: encoder.encode_batch(vectors))

    def spin_disabled_spans():
        for _ in range(TRACER_PROBE_CALLS):
            with tracer.span("encode.batch", batch=128, peaks=4096):
                pass

    span_seconds = _best_of(spin_disabled_spans) / TRACER_PROBE_CALLS
    overhead = span_seconds / max(encode_seconds, 1e-12)
    with capsys.disabled():
        print(
            f"\n[bench-obs] disabled span {1e9 * span_seconds:.0f} ns vs "
            f"encode_batch {1000 * encode_seconds:.2f} ms "
            f"({100 * overhead:.4f}% overhead)"
        )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled tracer span costs {100 * overhead:.2f}% of encode_batch "
        f"(must stay < {100 * MAX_DISABLED_OVERHEAD:.0f}%)"
    )
