"""Bench: regenerate Figure 13 (identifications vs. HD dimension)."""

from conftest import run_once

from repro.experiments import run_fig13


def test_fig13_hd_dimension(benchmark, record):
    result = run_once(benchmark, run_fig13)
    record(result)
    dims = result.column("hd_dim")
    ideal = result.column("ideal")
    rram = result.column("in_rram_3bpc")
    assert dims == sorted(dims, reverse=True)
    # Identifications degrade as the dimension shrinks (compare the
    # largest dimension against the smallest).
    assert ideal[-1] < ideal[0]
    assert rram[-1] < rram[0]
    # The in-RRAM pipeline tracks the ideal one at high dimension
    # (within 10%) and never meaningfully exceeds it.
    assert rram[0] >= 0.9 * ideal[0]
    for ideal_ids, rram_ids in zip(ideal, rram):
        assert rram_ids <= ideal_ids * 1.1
    # At the smallest dimension the analog noise hurts the RRAM path
    # more than the ideal one — the widening gap the paper plots.
    assert (ideal[-1] - rram[-1]) >= 0
