"""Bench: ablations of the paper's design choices (DESIGN.md Section 5)."""

from conftest import run_once

from repro.experiments import (
    run_ablation_encoding_scheme,
    run_ablation_fdr,
    run_ablation_id_precision,
    run_ablation_levels,
    run_ablation_weight_mapping,
)


def test_ablation_chunked_levels(benchmark, record):
    result = run_once(benchmark, run_ablation_levels)
    record(result)
    by_scheme = {row[0]: row for row in result.rows}
    classic_ids = by_scheme["classic"][1]
    chunked_ids = by_scheme["chunked"][1]
    # Section 4.2.1's claim: the chunked construction costs little or no
    # quality ...
    assert chunked_ids >= 0.9 * classic_ids
    # ... while cutting encoding cycles by the dim/chunks ratio.
    assert by_scheme["chunked"][2] < 0.25 * by_scheme["classic"][2]


def test_ablation_id_precision(benchmark, record):
    result = run_once(benchmark, run_ablation_id_precision)
    record(result)
    ids = result.column("identifications")
    # Multi-bit IDs never hurt; 3-bit at least matches 1-bit.
    assert ids[2] >= 0.95 * ids[0]


def test_ablation_weight_mapping(benchmark, record):
    result = run_once(benchmark, run_ablation_weight_mapping)
    record(result)
    for row in result.rows:
        _active, differential, nondifferential = row
        # Section 4.1.1: the differential pair is strictly more accurate
        # under the same device/circuit noise.
        assert differential < nondifferential


def test_ablation_encoding_scheme(benchmark, record):
    result = run_once(benchmark, run_ablation_encoding_scheme)
    record(result)
    by_encoder = {row[0]: row[1] for row in result.rows}
    # Section 3.2's claim: ID-Level captures m/z + intensity better than
    # both alternatives the literature proposed.
    assert by_encoder["id-level"] >= by_encoder["random-projection"]
    assert by_encoder["id-level"] >= by_encoder["permutation"]
    # All encoders produce a functioning search (sanity).
    assert all(count > 0 for count in by_encoder.values())


def test_ablation_fdr_grouping(benchmark, record):
    result = run_once(benchmark, run_ablation_fdr)
    record(result)
    by_variant = {row[0]: row for row in result.rows}
    # Subgroup FDR accepts at least as many modified PSMs as global FDR.
    assert by_variant["grouped"][2] >= by_variant["global"][2]
    # Both stay honest: most accepted PSMs are correct.
    for variant in ("global", "grouped"):
        accepted, correct = by_variant[variant][1], by_variant[variant][3]
        if accepted:
            assert correct >= 0.9 * accepted
