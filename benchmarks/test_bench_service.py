"""Bench: online service — micro-batched vs one-spectrum-per-request.

The service exists so the hot path always runs the vectorized batch
search even when clients send one spectrum at a time.  These benchmarks
measure that amortisation directly:

* **sequential** — one client, one spectrum per request, batching and
  caching disabled: every request pays a full single-query search;
* **micro-batched** — ``NUM_CLIENTS`` concurrent clients streaming
  their backlogs; the scheduler coalesces across clients into dense
  batch searches.

Both paths must return PSMs bit-identical to a direct
:class:`~repro.oms.search.HDOmsSearcher` run (asserted always, which
keeps the benchmark a correctness gate even on slow CI).  The >= 2x
throughput assertion only runs at full workload scale — at CI's
``REPRO_BENCH_SCALE=0.2`` the library is too small for batching to pay
for its queueing, so the smoke job asserts coalescing + parity and
prints the ratio.
"""

import os
import threading
import time

import pytest

from repro.hdc.spaces import HDSpaceConfig
from repro.index import LibraryIndex
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.ms.vectorize import BinningConfig
from repro.oms.search import HDOmsSearcher
from repro.service import SearchService, ServiceConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
NUM_CLIENTS = 8
TIMED_ROUNDS = 2  # best-of to damp scheduler jitter


@pytest.fixture(scope="module")
def service_setup():
    workload = build_workload(
        WorkloadConfig(
            name="bench-service",
            num_references=max(100, int(4000 * BENCH_SCALE)),
            num_queries=max(16, int(128 * BENCH_SCALE)),
            seed=11,
        )
    )
    binning = BinningConfig()
    index = LibraryIndex.build(
        workload.references,
        space_config=HDSpaceConfig(
            dim=2048, num_bins=binning.num_bins, num_levels=16, seed=5
        ),
        binning=binning,
        source="bench-service",
    )
    baseline = HDOmsSearcher.from_index(index).search(workload.queries)
    return workload, index, {psm.query_id: psm for psm in baseline.psms}


def _assert_parity(results, workload, baseline):
    assert len(results) == len(workload.queries)
    for query in workload.queries:
        assert results[query.identifier] == baseline.get(query.identifier)


def _run_sequential(index, queries):
    """One spectrum per request, single client, no batching, no cache."""
    config = ServiceConfig(max_batch=1, max_wait_ms=0.0, cache_capacity=0)
    with SearchService(index, config) as service:
        for query in queries[: min(8, len(queries))]:  # warm the engine
            service.search_one(query)
        best = float("inf")
        results = {}
        for _ in range(TIMED_ROUNDS):
            start = time.perf_counter()
            for query in queries:
                results[query.identifier] = service.search_one(query)
            best = min(best, time.perf_counter() - start)
    return best, results


def _run_microbatched(index, queries):
    """NUM_CLIENTS concurrent clients, coalesced by the scheduler."""
    config = ServiceConfig(max_batch=128, max_wait_ms=5.0, cache_capacity=0)
    with SearchService(index, config) as service:
        service.search_many(queries[: min(8, len(queries))])  # warm
        best = float("inf")
        results = {}
        for _ in range(TIMED_ROUNDS):

            def client(shard):
                backlog = queries[shard::NUM_CLIENTS]
                for query, psm in zip(backlog, service.search_many(backlog)):
                    results[query.identifier] = psm

            threads = [
                threading.Thread(target=client, args=(shard,))
                for shard in range(NUM_CLIENTS)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            best = min(best, time.perf_counter() - start)
        stats = service.scheduler.stats.snapshot()
    return best, results, stats


def test_bench_service_microbatch_speedup(service_setup, capsys):
    """Micro-batched concurrent serving must beat request-at-a-time."""
    workload, index, baseline = service_setup
    sequential_seconds, sequential_results = _run_sequential(
        index, workload.queries
    )
    batched_seconds, batched_results, stats = _run_microbatched(
        index, workload.queries
    )
    # Correctness first: both serving modes are bit-identical to the
    # direct searcher, per query, regardless of batch composition.
    _assert_parity(sequential_results, workload, baseline)
    _assert_parity(batched_results, workload, baseline)
    # The scheduler really coalesced.  Each client's backlog enters the
    # queue atomically via search_many, so even the worst-case flush
    # schedule (every backlog flushed alone) keeps the mean well above
    # this floor — the assert is schedule-independent.
    assert stats["mean_batch_size"] > 1.5
    ratio = sequential_seconds / max(batched_seconds, 1e-9)
    queries_per_second = (
        TIMED_ROUNDS * len(workload.queries) / max(batched_seconds, 1e-9)
    )
    with capsys.disabled():
        print(
            f"\n[bench-service] sequential {sequential_seconds:.3f}s, "
            f"micro-batched ({NUM_CLIENTS} clients) {batched_seconds:.3f}s "
            f"({ratio:.2f}x, mean batch {stats['mean_batch_size']:.1f}, "
            f"{queries_per_second:.0f} q/s)"
        )
    if BENCH_SCALE >= 1.0:
        # The acceptance bar: batching wins by at least 2x at scale.
        assert ratio >= 2.0
    # Below full scale the workload is too small for batching to pay
    # for its queueing, and timing asserts on shared CI runners flake;
    # parity + coalescing above are the gate, the printed ratio is
    # informational.


def test_bench_cache_hot_path(service_setup, benchmark):
    """A fully warmed cache serves repeats without touching the engine."""
    workload, index, baseline = service_setup
    config = ServiceConfig(max_batch=64, max_wait_ms=2.0, cache_capacity=4096)
    with SearchService(index, config) as service:
        service.search_many(workload.queries)  # populate the cache
        batches_before = service.scheduler.stats.snapshot()["batches"]

        def cached_pass():
            return service.search_many(workload.queries)

        results = benchmark.pedantic(cached_pass, rounds=3, iterations=1)
        _assert_parity(
            {
                query.identifier: psm
                for query, psm in zip(workload.queries, results)
            },
            workload,
            baseline,
        )
        # Every repeat was a cache hit: the engine never ran again.
        assert (
            service.scheduler.stats.snapshot()["batches"] == batches_before
        )
        assert service.cache.stats()["hits"] >= len(workload.queries)


def test_bench_http_round_trip(service_setup, capsys):
    """End-to-end HTTP latency for a handful of single requests."""
    from repro.service import SearchClient, start_server

    workload, index, baseline = service_setup
    config = ServiceConfig(max_batch=32, max_wait_ms=2.0)
    sample = workload.queries[: min(16, len(workload.queries))]
    with SearchService(index, config) as service:
        server = start_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            client = SearchClient(f"http://{host}:{port}")
            client.search(sample[0])  # warm
            start = time.perf_counter()
            for query in sample:
                assert client.search(query) == baseline.get(query.identifier)
            elapsed = time.perf_counter() - start
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
    with capsys.disabled():
        print(
            f"\n[bench-service] HTTP round trip "
            f"{1000.0 * elapsed / len(sample):.2f} ms/request "
            f"({len(sample)} requests)"
        )


def test_bench_coordinator_scale_out(service_setup, tmp_path, capsys):
    """Scatter-gather over 2 workers must beat 1 worker on batches.

    Both topologies run real subprocess workers behind the real
    coordinator (HTTP end to end), so the measured ratio includes every
    tax a deployment pays: JSON, scatter, merge.  Parity against the
    direct searcher is asserted always; the >= 1.8x bar only at full
    scale, where per-partition scoring dominates the fixed overheads.
    """
    import json
    from pathlib import Path

    from repro.coord import (
        Coordinator,
        CoordinatorService,
        LocalWorkerFleet,
        PartitionPlan,
        assign_replicas,
        materialize_partitions,
        start_coordinator_server,
    )
    from repro.ms.vectorize import BinningConfig
    from repro.service import SearchClient
    from repro.store import build_store

    workload, index, baseline = service_setup
    binning = BinningConfig()
    store = build_store(
        workload.references,
        tmp_path / "bench-store",
        space_config=HDSpaceConfig(
            dim=2048, num_bins=binning.num_bins, num_levels=16, seed=5
        ),
        binning=binning,
        segment_rows=max(64, len(workload.references) // 8),
    )
    expected = [baseline.get(q.identifier) for q in workload.queries]
    timings = {}
    try:
        for num_workers in (1, 2):
            plan = PartitionPlan.build(store, num_workers, "rows")
            paths = materialize_partitions(store, plan)
            fleet = LocalWorkerFleet(
                [paths[spec.index] for spec in plan.partitions],
                workers=0,
                extra_args=("--max-batch", "128", "--cache-size", "0"),
            )
            coordinator = None
            front = None
            thread = None
            try:
                urls = fleet.wait_ready()
                coordinator = Coordinator(
                    plan.partitions, assign_replicas(urls, len(plan))
                )
                coordinator.wait_ready(timeout=120)
                front = start_coordinator_server(
                    CoordinatorService(coordinator, max_inflight=32)
                )
                thread = threading.Thread(
                    target=front.serve_forever, daemon=True
                )
                thread.start()
                host, port = front.server_address[:2]
                client = SearchClient(f"http://{host}:{port}", timeout=600)
                warm = workload.queries[: min(8, len(workload.queries))]
                client.search_batch(warm)  # warm engines on every worker
                best = float("inf")
                for _ in range(TIMED_ROUNDS):
                    start = time.perf_counter()
                    psms = client.search_batch(workload.queries)
                    best = min(best, time.perf_counter() - start)
                    assert psms == expected  # bit-identical, every round
                timings[num_workers] = best
            finally:
                if front is not None:
                    front.shutdown()
                    front.server_close()
                if thread is not None:
                    thread.join(timeout=10)
                if coordinator is not None:
                    coordinator.close()
                fleet.close()
    finally:
        store.close()

    ratio = timings[1] / max(timings[2], 1e-9)
    queries_per_second = len(workload.queries) / max(timings[2], 1e-9)
    # Scatter-gather parallelises CPU-bound scoring across worker
    # *processes*, so the 1.8x bar needs two real cores; a single-core
    # runner can only assert the coordination tax stays bounded (same
    # policy as MIN_WARM_SPEEDUP in test_bench_score.py).
    cores = os.cpu_count() or 1
    min_speedup = 1.8 if cores >= 2 else 0.5
    with capsys.disabled():
        print(
            f"\n[bench-coord] 1 worker {timings[1]:.3f}s, "
            f"2 workers {timings[2]:.3f}s ({ratio:.2f}x, "
            f"{queries_per_second:.0f} q/s coordinated, {cores} cores)"
        )
    results_path = Path(__file__).parent / "results" / "BENCH_coord.json"
    results_path.parent.mkdir(parents=True, exist_ok=True)
    history = (
        json.loads(results_path.read_text()) if results_path.exists() else []
    )
    history.append(
        {
            "bench": "coordinator-scale-out",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "scale": BENCH_SCALE,
            "num_references": len(workload.references),
            "num_queries": len(workload.queries),
            "seconds_one_worker": timings[1],
            "seconds_two_workers": timings[2],
            "speedup": ratio,
            "queries_per_second": queries_per_second,
            "cpu_count": cores,
        }
    )
    results_path.write_text(json.dumps(history, indent=2) + "\n")
    if BENCH_SCALE >= 1.0:
        # The acceptance bar: two workers win by at least 1.8x at full
        # scale on multi-core hardware; see min_speedup above.
        assert ratio >= min_speedup
