"""Bench: regenerate Figure 12 + Section 5.3.3 (energy & speedup)."""

from conftest import run_once

from repro.experiments import run_fig12
from repro.accelerator import PAPER_HEK293_SHAPE


def test_fig12_energy_and_speedup(benchmark, record):
    result = run_once(benchmark, run_fig12)
    record(result)
    energy = {row[0]: row[3] for row in result.rows}
    speedup = {
        row[0]: row[5] for row in result.rows if row[5] != "-"
    }
    # Energy-efficiency ordering of Figure 12:
    # CPU < ANN-SoLo GPU < HyperOMS GPU << this work.
    assert (
        energy["ann-solo-cpu-i7-11700K"]
        < energy["ann-solo-gpu-rtx4090"]
        < energy["hyperoms-gpu-rtx4090"]
        < energy["this-work-mlc-rram"]
    )
    # Two-to-three orders of magnitude vs. the CPU baseline.
    assert 500 <= energy["this-work-mlc-rram"] <= 30_000
    # Speedups land near the paper's 76.7x / 24.8x / 1.7x.
    assert 40 <= speedup["ann-solo-cpu-i7-11700K"] <= 150
    assert 12 <= speedup["ann-solo-gpu-rtx4090"] <= 50
    assert 1.2 <= speedup["hyperoms-gpu-rtx4090"] <= 3.0


def test_fig12_scales_to_hek293(benchmark, record):
    """The paper expects the advantage to persist at 3x the library."""
    result = run_once(benchmark, run_fig12, shape=PAPER_HEK293_SHAPE)
    result.experiment_id = "fig12_hek293"
    record(result)
    energy = {row[0]: row[3] for row in result.rows}
    assert energy["this-work-mlc-rram"] > 500
